#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace uv {
namespace {

// How long a parallel region sat between submission and each worker's
// claim. Only maintained while a trace or metrics log is live (the extra
// clock reads are pure overhead otherwise).
obs::Histogram& QueueWaitHist() {
  static obs::Histogram& hist =
      obs::Registry::Global().GetHistogram("threadpool.queue_wait_us");
  return hist;
}

obs::Gauge& QueueWaitGauge() {
  static obs::Gauge& gauge =
      obs::Registry::Global().GetGauge("threadpool.queue_wait_us_last");
  return gauge;
}

void RecordQueueWait(uint64_t submit_us) {
  if (submit_us == 0) return;
  const uint64_t now = obs::NowMicros();
  const uint64_t wait = now > submit_us ? now - submit_us : 0;
  QueueWaitHist().Record(wait);
  QueueWaitGauge().Set(static_cast<int64_t>(wait));
}

// Depth of parallel-region execution on this thread. Non-zero both on pool
// workers running a chunk and on the submitting thread while it
// participates, so nested ParallelFor calls from either side run inline.
thread_local int tls_region_depth = 0;

struct RegionScope {
  RegionScope() { ++tls_region_depth; }
  ~RegionScope() { --tls_region_depth; }
};

std::mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global_pool;  // NOLINT: intentional singleton

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  UV_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads - 1);
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::InParallelRegion() { return tls_region_depth > 0; }

void ThreadPool::RunChunksInline(int64_t num_chunks,
                                 FunctionRef<void(int64_t)> fn) {
  RegionScope scope;
  for (int64_t c = 0; c < num_chunks; ++c) {
    obs::SpanGuard span("parallel_chunk", obs::SpanLevel::kFine, "chunk", c);
    fn(c);
  }
}

void ThreadPool::RunChunks(int64_t num_chunks, FunctionRef<void(int64_t)> fn) {
  if (num_chunks <= 0) return;
  // Nested submission (a kernel inside a fold job, a fold job inside an
  // outer region, ...) runs inline: the outer region already owns the
  // workers, and inline execution preserves the fixed chunk layout.
  if (workers_.empty() || num_chunks == 1 || InParallelRegion()) {
    RunChunksInline(num_chunks, fn);
    return;
  }

  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  submit_us_.store(obs::ProfilingActive() ? obs::NowMicros() : 0,
                   std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    num_chunks_ = num_chunks;
    next_chunk_ = 0;
    claimed_chunks_ = 0;
    done_chunks_ = 0;
    chunk_fn_ = &fn;
    first_error_ = nullptr;
  }
  work_cv_.notify_all();

  // The submitting thread claims chunks alongside the workers.
  {
    RegionScope scope;
    for (;;) {
      int64_t c;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (next_chunk_ >= num_chunks_) break;
        c = next_chunk_++;
        ++claimed_chunks_;
      }
      try {
        obs::SpanGuard span("parallel_chunk", obs::SpanLevel::kFine, "chunk",
                            c);
        fn(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
        next_chunk_ = num_chunks_;  // Drop unclaimed chunks.
      }
      std::lock_guard<std::mutex> lock(mu_);
      ++done_chunks_;
    }
  }

  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] {
      return next_chunk_ >= num_chunks_ && done_chunks_ == claimed_chunks_;
    });
    chunk_fn_ = nullptr;
    err = first_error_;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    const FunctionRef<void(int64_t)>* fn = nullptr;
    int64_t c = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ ||
               (chunk_fn_ != nullptr && next_chunk_ < num_chunks_);
      });
      if (shutdown_) return;
      fn = chunk_fn_;
      c = next_chunk_++;
      ++claimed_chunks_;
    }
    RecordQueueWait(submit_us_.load(std::memory_order_relaxed));
    {
      RegionScope scope;
      try {
        obs::SpanGuard span("parallel_chunk", obs::SpanLevel::kFine, "chunk",
                            c);
        (*fn)(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
        next_chunk_ = num_chunks_;
      }
    }
    bool drained = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++done_chunks_;
      drained = next_chunk_ >= num_chunks_ && done_chunks_ == claimed_chunks_;
    }
    if (drained) done_cv_.notify_all();
  }
}

int ThreadPool::NumThreadsFromEnv() {
  if (const char* v = std::getenv("UV_THREADS")) {
    const int n = std::atoi(v);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(NumThreadsFromEnv());
  }
  return *g_global_pool;
}

void ThreadPool::SetGlobalThreads(int num_threads) {
  UV_CHECK_GE(num_threads, 1);
  std::lock_guard<std::mutex> lock(g_global_mu);
  g_global_pool = std::make_unique<ThreadPool>(num_threads);
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 FunctionRef<void(int64_t, int64_t)> fn) {
  if (end <= begin) return;
  UV_CHECK_GE(grain, 1);
  const int64_t total = end - begin;
  const int64_t num_chunks = (total + grain - 1) / grain;
  if (num_chunks == 1) {
    // Same span as the pooled path so single-chunk ranges (the common case
    // on small problems / few cores) still show up in traces.
    obs::SpanGuard span("parallel_chunk", obs::SpanLevel::kFine, "chunk",
                        int64_t{0});
    fn(begin, end);
    return;
  }
  ThreadPool::Global().RunChunks(num_chunks, [&](int64_t c) {
    const int64_t lo = begin + c * grain;
    const int64_t hi = std::min<int64_t>(end, lo + grain);
    fn(lo, hi);
  });
}

}  // namespace uv
