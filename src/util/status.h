#ifndef UV_UTIL_STATUS_H_
#define UV_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

namespace uv {

// Error codes for recoverable failures crossing public API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kIoError,
};

// Lightweight status object: OK or (code, message). The library does not use
// exceptions; fallible public entry points return Status or StatusOr<T>.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" string.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or an error Status. Accessing the value of
// a non-OK StatusOr is a checked programming error.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit from error status is idiomatic.
      : status_(std::move(status)) {
    UV_CHECK(!status_.ok());
  }
  StatusOr(T value)  // NOLINT: implicit from value is idiomatic.
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    UV_CHECK(status_.ok());
    return value_;
  }
  T& value() & {
    UV_CHECK(status_.ok());
    return value_;
  }
  T&& value() && {
    UV_CHECK(status_.ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace uv

// Propagates a non-OK status from an expression to the caller.
#define UV_RETURN_IF_ERROR(expr)              \
  do {                                        \
    ::uv::Status uv_status_ = (expr);         \
    if (!uv_status_.ok()) return uv_status_;  \
  } while (0)

#endif  // UV_UTIL_STATUS_H_
