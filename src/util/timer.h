#ifndef UV_UTIL_TIMER_H_
#define UV_UTIL_TIMER_H_

#include <chrono>

namespace uv {

// Monotonic wall-clock stopwatch used by the efficiency benchmarks
// (Table III) and the experiment runner.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Reset, in seconds.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace uv

#endif  // UV_UTIL_TIMER_H_
