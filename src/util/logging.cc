#include "util/logging.h"

#include <cstdio>

namespace uv {
namespace {

LogLevel g_min_level = LogLevel::kInfo;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }
LogLevel GetLogLevel() { return g_min_level; }

void Logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_min_level)) return;
  std::fprintf(stderr, "[%s] ", LevelTag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace uv
