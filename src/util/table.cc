#include "util/table.h"

#include <cstdio>

#include "util/check.h"

namespace uv {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  UV_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto append_row = [&](std::string* out, const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out->append(row[c]);
      out->append(widths[c] - row[c].size() + 2, ' ');
    }
    // Trim trailing spaces on the line.
    while (!out->empty() && out->back() == ' ') out->pop_back();
    out->push_back('\n');
  };
  std::string out;
  append_row(&out, header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total >= 2 ? total - 2 : total, '-');
  out.push_back('\n');
  for (const auto& row : rows_) append_row(&out, row);
  return out;
}

std::string TextTable::ToCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out.push_back(',');
      out.append(row[c]);
    }
    out.push_back('\n');
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

void TextTable::Print() const {
  const std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FormatMeanStd(double mean, double std) {
  char buf[96];
  char stdbuf[32];
  std::snprintf(stdbuf, sizeof(stdbuf), "%.3f", std);
  // Paper style drops the leading zero on the std: "0.837 (.001)".
  const char* stds = stdbuf;
  if (stdbuf[0] == '0') stds = stdbuf + 1;
  std::snprintf(buf, sizeof(buf), "%.3f (%s)", mean, stds);
  return buf;
}

}  // namespace uv
