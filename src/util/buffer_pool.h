#ifndef UV_UTIL_BUFFER_POOL_H_
#define UV_UTIL_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace uv {

// Point-in-time view of the allocation counters (summed over all threads).
// heap_allocs counts slabs obtained from the system allocator — the only
// allocations the hot path ever pays for once the pool is warm; hits are
// acquisitions served from a free list without touching the heap.
//
// The counters themselves live in the obs metrics registry under
// mem.acquires / mem.pool_hits / mem.heap_allocs / mem.heap_bytes /
// mem.releases / mem.tls_spills, so they appear in UV_METRICS registry
// dumps and obs::Registry snapshots with no separate plumbing; Stats() is
// a typed view over the same counters.
struct MemStatsSnapshot {
  uint64_t acquires = 0;     // Total Acquire calls.
  uint64_t hits = 0;         // Served from the thread or global cache.
  uint64_t heap_allocs = 0;  // Fresh slabs from the system allocator.
  uint64_t heap_bytes = 0;   // Bytes of those fresh slabs.
  uint64_t releases = 0;     // Total Release calls.
  uint64_t tls_spills = 0;   // Releases that overflowed a thread cache.
  // Live footprint: bucket-rounded bytes acquired and not yet released,
  // and its high-water mark since the last ResetPeak()/ResetStats(). These
  // are the O(batch·fanout)-vs-O(city) evidence the city-scale benchmarks
  // gate on (mirrored as gauges mem.pool_bytes / mem.pool_bytes_peak).
  uint64_t pool_bytes = 0;
  uint64_t pool_bytes_peak = 0;
};

// Process-wide recycling allocator for the compute hot path: tensor value /
// gradient storage, autograd graph nodes, and kernel workspaces.
//
// Slabs are size-bucketed by the next power of two (256 B minimum) and
// recycled through a per-thread cache backed by a mutex-protected global
// pool, so steady-state training steps perform no heap allocation and —
// because Acquire never touches the returned bytes — no redundant zero
// fill. Callers own the zeroing contract: anything that must start at
// zero (Tensor(r, c), EnsureGrad) clears the slab explicitly, so results
// are bit-identical whether a slab is fresh or recycled, pool on or off.
//
// UV_POOL=0 (or SetEnabled(false)) disables caching: every Acquire goes to
// the system allocator and every Release frees, which keeps the identical
// bucket-rounded capacities so the two modes can be toggled mid-process.
class BufferPool {
 public:
  // Returns a slab of at least `bytes` bytes with unspecified contents
  // (nullptr when bytes == 0). The slab's capacity is the bucket-rounded
  // size, so any future Acquire/Release with a byte count that rounds to
  // the same bucket may reuse it.
  static void* Acquire(size_t bytes);

  // Returns a slab previously obtained from Acquire(bytes') where bytes'
  // rounds to the same bucket as `bytes`. No-op for nullptr.
  static void Release(void* p, size_t bytes);

  // Bucket-rounded capacity for a request of `bytes` (what Acquire really
  // hands out). Exposed so Tensor can grow in place within one bucket.
  static size_t BucketCapacity(size_t bytes);

  // Whether acquisitions are served from the recycling caches. Initialized
  // from UV_POOL (anything but "0" enables) on first use.
  static bool Enabled();
  // Programmatic override for tests/benchmarks; drops all cached slabs
  // when disabling so toggling never strands memory.
  static void SetEnabled(bool enabled);

  // Frees every cached slab (this thread's cache and the global pool).
  static void Trim();

  static MemStatsSnapshot Stats();
  static void ResetStats();

  // Restarts the pool_bytes_peak high-water mark from the current
  // outstanding footprint (the footprint itself is never reset — it tracks
  // live slabs). Call before a phase whose own peak should be measured.
  static void ResetPeak();
};

// True when UV_MEM_STATS is set to a non-"0" value: benchmarks and the
// evaluation runner print allocation counters alongside timings.
bool MemStatsRequested();

// The one rendering of a counters snapshot every tool prints (no trailing
// newline):
//   [mem] pool on: acquires=N hits=N (P%) heap_allocs=N heap_bytes=XMB
//   releases=N peak=XMB
std::string FormatMemStats(const MemStatsSnapshot& s);

}  // namespace uv

#endif  // UV_UTIL_BUFFER_POOL_H_
