#include "graph/csr_graph.h"

#include <algorithm>

#include "util/check.h"

namespace uv::graph {

CsrGraph CsrGraph::FromEdges(int num_nodes, const std::vector<Edge>& edges,
                             bool symmetrize, bool add_self_loops) {
  UV_CHECK_GE(num_nodes, 0);
  std::vector<Edge> all;
  all.reserve(edges.size() * (symmetrize ? 2 : 1) +
              (add_self_loops ? num_nodes : 0));
  for (const Edge& e : edges) {
    UV_CHECK_GE(e.first, 0);
    UV_CHECK_LT(e.first, num_nodes);
    UV_CHECK_GE(e.second, 0);
    UV_CHECK_LT(e.second, num_nodes);
    all.push_back(e);
    if (symmetrize && e.first != e.second) {
      all.emplace_back(e.second, e.first);
    }
  }
  if (add_self_loops) {
    for (int i = 0; i < num_nodes; ++i) all.emplace_back(i, i);
  }
  // Group by destination, then by source; drop duplicates.
  std::sort(all.begin(), all.end(),
            [](const Edge& a, const Edge& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  all.erase(std::unique(all.begin(), all.end()), all.end());

  auto offsets = std::make_shared<std::vector<int>>(num_nodes + 1, 0);
  auto neighbors = std::make_shared<std::vector<int>>();
  neighbors->reserve(all.size());
  int current = 0;
  for (const Edge& e : all) {
    while (current < e.second) {
      (*offsets)[++current] = static_cast<int>(neighbors->size());
    }
    neighbors->push_back(e.first);
  }
  while (current < num_nodes) {
    (*offsets)[++current] = static_cast<int>(neighbors->size());
  }

  CsrGraph g;
  g.num_nodes_ = num_nodes;
  g.offsets_ = std::move(offsets);
  g.neighbors_ = std::move(neighbors);
  return g;
}

CsrGraph CsrGraph::FromCsrArrays(
    int num_nodes, std::shared_ptr<const std::vector<int>> offsets,
    std::shared_ptr<const std::vector<int>> neighbors) {
  UV_CHECK_GE(num_nodes, 0);
  UV_CHECK(offsets && neighbors);
  UV_CHECK_EQ(static_cast<int64_t>(offsets->size()), num_nodes + 1);
  UV_CHECK_EQ(offsets->front(), 0);
  UV_CHECK_EQ(static_cast<size_t>(offsets->back()), neighbors->size());
  for (int i = 0; i < num_nodes; ++i) {
    UV_CHECK_LE((*offsets)[i], (*offsets)[i + 1]);
  }
  CsrGraph g;
  g.num_nodes_ = num_nodes;
  g.offsets_ = std::move(offsets);
  g.neighbors_ = std::move(neighbors);
  return g;
}

bool CsrGraph::HasEdge(int src, int dst) const {
  UV_CHECK_GE(dst, 0);
  UV_CHECK_LT(dst, num_nodes_);
  const auto& off = *offsets_;
  const auto begin = neighbors_->begin() + off[dst];
  const auto end = neighbors_->begin() + off[dst + 1];
  return std::binary_search(begin, end, src);
}

std::vector<int> CsrGraph::InNeighbors(int dst) const {
  UV_CHECK_GE(dst, 0);
  UV_CHECK_LT(dst, num_nodes_);
  const auto& off = *offsets_;
  return std::vector<int>(neighbors_->begin() + off[dst],
                          neighbors_->begin() + off[dst + 1]);
}

}  // namespace uv::graph
