#ifndef UV_GRAPH_ROAD_NETWORK_H_
#define UV_GRAPH_ROAD_NETWORK_H_

#include <vector>

#include "graph/grid.h"

namespace uv::graph {

// Road-network graph in the representation of the paper's data source
// (Karduni et al.): nodes are intersections with planar coordinates in
// metres, edges are road segments connecting intersections.
class RoadNetwork {
 public:
  struct Intersection {
    double x = 0.0;
    double y = 0.0;
  };

  int AddIntersection(double x, double y);
  // Adds an undirected road segment between two intersections.
  void AddSegment(int a, int b);

  int num_intersections() const {
    return static_cast<int>(intersections_.size());
  }
  int64_t num_segments() const { return num_segments_; }
  const Intersection& intersection(int i) const { return intersections_[i]; }
  const std::vector<int>& Neighbors(int i) const { return adjacency_[i]; }

  // Region-connectivity rule of paper Section IV-A: regions v_i and v_j are
  // "mutually connected by roads" if some intersection located in v_i can
  // reach some intersection located in v_j within `max_hops` road segments.
  // Returns undirected region pairs as directed edges in both directions;
  // self pairs are skipped.
  std::vector<Edge> BuildRegionConnectivityEdges(const GridSpec& grid,
                                                 int max_hops) const;

  // Hop distance between two intersections (BFS), or -1 if unreachable.
  int HopDistance(int from, int to) const;

 private:
  std::vector<Intersection> intersections_;
  std::vector<std::vector<int>> adjacency_;
  int64_t num_segments_ = 0;
};

}  // namespace uv::graph

#endif  // UV_GRAPH_ROAD_NETWORK_H_
