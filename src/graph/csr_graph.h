#ifndef UV_GRAPH_CSR_GRAPH_H_
#define UV_GRAPH_CSR_GRAPH_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace uv::graph {

using Edge = std::pair<int, int>;  // (src, dst)

// Compressed-sparse-row graph grouped by destination node: for node i, the
// sources of its incoming edges are neighbors()[offsets()[i] ..
// offsets()[i+1]). This is exactly the layout the autograd segment ops
// consume, so a CsrGraph can be handed to the GNN layers without copying.
class CsrGraph {
 public:
  CsrGraph() = default;

  // Builds from an edge list. If `symmetrize` is set, every edge is inserted
  // in both directions. If `add_self_loops` is set, (i, i) is added for every
  // node. Duplicate edges are removed.
  static CsrGraph FromEdges(int num_nodes, const std::vector<Edge>& edges,
                            bool symmetrize, bool add_self_loops);

  // Adopts already-built CSR arrays without copying (sharded/subgraph
  // builders construct the dst-grouped layout directly). `offsets` must
  // have num_nodes+1 monotone entries starting at 0 and ending at
  // neighbors->size(); each dst segment must be sorted ascending.
  static CsrGraph FromCsrArrays(
      int num_nodes, std::shared_ptr<const std::vector<int>> offsets,
      std::shared_ptr<const std::vector<int>> neighbors);

  int num_nodes() const { return num_nodes_; }
  int64_t num_edges() const {
    return neighbors_ ? static_cast<int64_t>(neighbors_->size()) : 0;
  }

  // Shared so the autograd ops can hold references without copying.
  const std::shared_ptr<const std::vector<int>>& offsets() const {
    return offsets_;
  }
  const std::shared_ptr<const std::vector<int>>& neighbors() const {
    return neighbors_;
  }

  // In-degree of node i.
  int Degree(int i) const {
    return (*offsets_)[i + 1] - (*offsets_)[i];
  }

  // Whether an edge src -> dst exists (binary search in the dst segment).
  bool HasEdge(int src, int dst) const;

  // Sources of edges into `dst`.
  std::vector<int> InNeighbors(int dst) const;

 private:
  int num_nodes_ = 0;
  std::shared_ptr<const std::vector<int>> offsets_;
  std::shared_ptr<const std::vector<int>> neighbors_;
};

}  // namespace uv::graph

#endif  // UV_GRAPH_CSR_GRAPH_H_
