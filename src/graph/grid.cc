#include "graph/grid.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace uv::graph {

double GridSpec::CenterDistanceMeters(int a, int b) const {
  const double dx = CenterX(a) - CenterX(b);
  const double dy = CenterY(a) - CenterY(b);
  return std::sqrt(dx * dx + dy * dy);
}

int GridSpec::RegionAt(double x, double y) const {
  int col = static_cast<int>(x / cell_meters);
  int row = static_cast<int>(y / cell_meters);
  col = std::clamp(col, 0, width - 1);
  row = std::clamp(row, 0, height - 1);
  return RegionId(row, col);
}

std::vector<Edge> BuildSpatialProximityEdges(const GridSpec& grid) {
  UV_CHECK_GT(grid.height, 0);
  UV_CHECK_GT(grid.width, 0);
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(grid.num_regions()) * 8);
  for (int r = 0; r < grid.height; ++r) {
    for (int c = 0; c < grid.width; ++c) {
      const int id = grid.RegionId(r, c);
      for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) {
          if (dr == 0 && dc == 0) continue;
          if (!grid.InBounds(r + dr, c + dc)) continue;
          edges.emplace_back(grid.RegionId(r + dr, c + dc), id);
        }
      }
    }
  }
  return edges;
}

std::array<int, 4> ShardSpec::TileBounds(const GridSpec& grid, int s) const {
  UV_CHECK_GE(s, 0);
  UV_CHECK_LT(s, num_shards());
  const int sr = s / shards_x;
  const int sc = s % shards_x;
  const int r0 = std::min(sr * tile_h, grid.height);
  const int c0 = std::min(sc * tile_w, grid.width);
  // The last tile row/column absorbs the remainder so every cell is owned
  // by exactly one shard.
  const int r1 = (sr + 1 == shards_y) ? grid.height
                                      : std::min(r0 + tile_h, grid.height);
  const int c1 = (sc + 1 == shards_x) ? grid.width
                                      : std::min(c0 + tile_w, grid.width);
  return {r0, c0, r1, c1};
}

ShardSpec MakeShardSpec(const GridSpec& grid, int target_shards) {
  UV_CHECK_GT(grid.height, 0);
  UV_CHECK_GT(grid.width, 0);
  ShardSpec spec;
  const int target = std::max(1, target_shards);
  // Roughly-square tiles: pick the factorization of `target` whose aspect
  // ratio best matches the grid's, then clamp so no tile dimension is empty.
  int best_y = 1;
  double best_score = -1.0;
  for (int sy = 1; sy <= target; ++sy) {
    if (target % sy != 0) continue;
    const int sx = target / sy;
    if (sy > grid.height || sx > grid.width) continue;
    const double tile_h = static_cast<double>(grid.height) / sy;
    const double tile_w = static_cast<double>(grid.width) / sx;
    const double aspect = tile_h > tile_w ? tile_w / tile_h : tile_h / tile_w;
    if (aspect > best_score) {
      best_score = aspect;
      best_y = sy;
    }
  }
  if (best_score < 0.0) {
    // Grid too small for the requested count: one shard.
    return spec;
  }
  spec.shards_y = best_y;
  spec.shards_x = target / best_y;
  spec.tile_h = std::max(1, grid.height / spec.shards_y);
  spec.tile_w = std::max(1, grid.width / spec.shards_x);
  return spec;
}

std::vector<int> WindowRegions(const GridSpec& grid, int id, int radius) {
  const int row = grid.RowOf(id);
  const int col = grid.ColOf(id);
  std::vector<int> out;
  out.reserve((2 * radius + 1) * (2 * radius + 1));
  for (int dr = -radius; dr <= radius; ++dr) {
    for (int dc = -radius; dc <= radius; ++dc) {
      if (grid.InBounds(row + dr, col + dc)) {
        out.push_back(grid.RegionId(row + dr, col + dc));
      }
    }
  }
  return out;
}

}  // namespace uv::graph
