#include "graph/grid.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace uv::graph {

double GridSpec::CenterDistanceMeters(int a, int b) const {
  const double dx = CenterX(a) - CenterX(b);
  const double dy = CenterY(a) - CenterY(b);
  return std::sqrt(dx * dx + dy * dy);
}

int GridSpec::RegionAt(double x, double y) const {
  int col = static_cast<int>(x / cell_meters);
  int row = static_cast<int>(y / cell_meters);
  col = std::clamp(col, 0, width - 1);
  row = std::clamp(row, 0, height - 1);
  return RegionId(row, col);
}

std::vector<Edge> BuildSpatialProximityEdges(const GridSpec& grid) {
  UV_CHECK_GT(grid.height, 0);
  UV_CHECK_GT(grid.width, 0);
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(grid.num_regions()) * 8);
  for (int r = 0; r < grid.height; ++r) {
    for (int c = 0; c < grid.width; ++c) {
      const int id = grid.RegionId(r, c);
      for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) {
          if (dr == 0 && dc == 0) continue;
          if (!grid.InBounds(r + dr, c + dc)) continue;
          edges.emplace_back(grid.RegionId(r + dr, c + dc), id);
        }
      }
    }
  }
  return edges;
}

std::vector<int> WindowRegions(const GridSpec& grid, int id, int radius) {
  const int row = grid.RowOf(id);
  const int col = grid.ColOf(id);
  std::vector<int> out;
  out.reserve((2 * radius + 1) * (2 * radius + 1));
  for (int dr = -radius; dr <= radius; ++dr) {
    for (int dc = -radius; dc <= radius; ++dc) {
      if (grid.InBounds(row + dr, col + dc)) {
        out.push_back(grid.RegionId(row + dr, col + dc));
      }
    }
  }
  return out;
}

}  // namespace uv::graph
