#ifndef UV_GRAPH_GRID_H_
#define UV_GRAPH_GRID_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace uv::graph {

// Geometry of the H x W region-grid partition of an urban area (paper
// Section III: N = H*W non-overlapping 128m x 128m grids). Region ids are
// row-major: id = row * width + col.
struct GridSpec {
  int height = 0;
  int width = 0;
  double cell_meters = 128.0;  // Paper: 128m x 128m grids.

  // int64: paper-scale grids reach 354,316 regions, and derived products
  // (region id pair keys, area x area terms) would overflow 32 bits.
  int64_t num_regions() const {
    return static_cast<int64_t>(height) * width;
  }
  int RegionId(int row, int col) const {
    return static_cast<int>(static_cast<int64_t>(row) * width + col);
  }
  int RowOf(int id) const { return id / width; }
  int ColOf(int id) const { return id % width; }
  bool InBounds(int row, int col) const {
    return row >= 0 && row < height && col >= 0 && col < width;
  }

  // Centre coordinates of a region in metres from the grid origin.
  double CenterX(int id) const { return (ColOf(id) + 0.5) * cell_meters; }
  double CenterY(int id) const { return (RowOf(id) + 0.5) * cell_meters; }

  // Euclidean distance between region centres, in metres.
  double CenterDistanceMeters(int a, int b) const;

  // Region containing the point (x, y) in metres, clamped to bounds.
  int RegionAt(double x, double y) const;
};

// Spatial-proximity edges: each region is connected to its (up to) eight
// neighbours in the 3x3 window (paper Fig. 1a). Returns directed edges in
// both directions.
std::vector<Edge> BuildSpatialProximityEdges(const GridSpec& grid);

// Ids of the regions in the (2*radius+1)^2 window centred on `id`,
// including `id` itself, clipped to the grid bounds.
std::vector<int> WindowRegions(const GridSpec& grid, int id, int radius);

// Deterministic rectangular tiling of a grid into shards (the "districts"
// of the sharded URG). The grid is cut into shards_y x shards_x tiles of
// tile_h x tile_w cells (the last row/column of tiles is ragged); the shard
// owning a region is pure arithmetic on its (row, col), so shard lookup
// needs no table and is identical for any thread count.
struct ShardSpec {
  int shards_y = 1;
  int shards_x = 1;
  int tile_h = 1;
  int tile_w = 1;

  int num_shards() const { return shards_y * shards_x; }

  int ShardOfCell(int row, int col) const {
    const int sr = std::min(row / tile_h, shards_y - 1);
    const int sc = std::min(col / tile_w, shards_x - 1);
    return sr * shards_x + sc;
  }
  int ShardOf(const GridSpec& grid, int id) const {
    return ShardOfCell(grid.RowOf(id), grid.ColOf(id));
  }

  // Half-open cell bounds {row0, col0, row1, col1} of shard `s`.
  std::array<int, 4> TileBounds(const GridSpec& grid, int s) const;
};

// Chooses a tiling with (at most) `target_shards` non-empty tiles, shaped
// to keep tiles roughly square. target_shards <= 0 selects one shard.
ShardSpec MakeShardSpec(const GridSpec& grid, int target_shards);

}  // namespace uv::graph

#endif  // UV_GRAPH_GRID_H_
