#ifndef UV_GRAPH_GRID_H_
#define UV_GRAPH_GRID_H_

#include <vector>

#include "graph/csr_graph.h"

namespace uv::graph {

// Geometry of the H x W region-grid partition of an urban area (paper
// Section III: N = H*W non-overlapping 128m x 128m grids). Region ids are
// row-major: id = row * width + col.
struct GridSpec {
  int height = 0;
  int width = 0;
  double cell_meters = 128.0;  // Paper: 128m x 128m grids.

  int num_regions() const { return height * width; }
  int RegionId(int row, int col) const { return row * width + col; }
  int RowOf(int id) const { return id / width; }
  int ColOf(int id) const { return id % width; }
  bool InBounds(int row, int col) const {
    return row >= 0 && row < height && col >= 0 && col < width;
  }

  // Centre coordinates of a region in metres from the grid origin.
  double CenterX(int id) const { return (ColOf(id) + 0.5) * cell_meters; }
  double CenterY(int id) const { return (RowOf(id) + 0.5) * cell_meters; }

  // Euclidean distance between region centres, in metres.
  double CenterDistanceMeters(int a, int b) const;

  // Region containing the point (x, y) in metres, clamped to bounds.
  int RegionAt(double x, double y) const;
};

// Spatial-proximity edges: each region is connected to its (up to) eight
// neighbours in the 3x3 window (paper Fig. 1a). Returns directed edges in
// both directions.
std::vector<Edge> BuildSpatialProximityEdges(const GridSpec& grid);

// Ids of the regions in the (2*radius+1)^2 window centred on `id`,
// including `id` itself, clipped to the grid bounds.
std::vector<int> WindowRegions(const GridSpec& grid, int id, int radius);

}  // namespace uv::graph

#endif  // UV_GRAPH_GRID_H_
