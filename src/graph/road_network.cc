#include "graph/road_network.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/check.h"

namespace uv::graph {

int RoadNetwork::AddIntersection(double x, double y) {
  intersections_.push_back({x, y});
  adjacency_.emplace_back();
  return static_cast<int>(intersections_.size()) - 1;
}

void RoadNetwork::AddSegment(int a, int b) {
  UV_CHECK_GE(a, 0);
  UV_CHECK_LT(a, num_intersections());
  UV_CHECK_GE(b, 0);
  UV_CHECK_LT(b, num_intersections());
  UV_CHECK_NE(a, b);
  // Keep adjacency duplicate-free.
  if (std::find(adjacency_[a].begin(), adjacency_[a].end(), b) !=
      adjacency_[a].end()) {
    return;
  }
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  ++num_segments_;
}

std::vector<Edge> RoadNetwork::BuildRegionConnectivityEdges(
    const GridSpec& grid, int max_hops) const {
  UV_CHECK_GT(max_hops, 0);
  const int n = num_intersections();
  // Region that each intersection falls in.
  std::vector<int> region_of(n);
  for (int i = 0; i < n; ++i) {
    region_of[i] = grid.RegionAt(intersections_[i].x, intersections_[i].y);
  }

  std::unordered_set<int64_t> pair_keys;
  std::vector<int> depth(n, -1);
  std::vector<int> touched;
  std::deque<int> queue;
  for (int start = 0; start < n; ++start) {
    const int ra = region_of[start];
    // Bounded BFS from this intersection.
    queue.clear();
    queue.push_back(start);
    depth[start] = 0;
    touched.push_back(start);
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      if (depth[u] == max_hops) continue;
      for (int v : adjacency_[u]) {
        if (depth[v] != -1) continue;
        depth[v] = depth[u] + 1;
        touched.push_back(v);
        queue.push_back(v);
        const int rb = region_of[v];
        if (rb != ra) {
          const int lo = std::min(ra, rb);
          const int hi = std::max(ra, rb);
          pair_keys.insert(static_cast<int64_t>(lo) * grid.num_regions() + hi);
        }
      }
    }
    for (int t : touched) depth[t] = -1;
    touched.clear();
  }

  std::vector<Edge> edges;
  edges.reserve(pair_keys.size() * 2);
  for (int64_t key : pair_keys) {
    const int lo = static_cast<int>(key / grid.num_regions());
    const int hi = static_cast<int>(key % grid.num_regions());
    edges.emplace_back(lo, hi);
    edges.emplace_back(hi, lo);
  }
  return edges;
}

int RoadNetwork::HopDistance(int from, int to) const {
  UV_CHECK_GE(from, 0);
  UV_CHECK_LT(from, num_intersections());
  UV_CHECK_GE(to, 0);
  UV_CHECK_LT(to, num_intersections());
  if (from == to) return 0;
  std::vector<int> depth(num_intersections(), -1);
  std::deque<int> queue;
  depth[from] = 0;
  queue.push_back(from);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (int v : adjacency_[u]) {
      if (depth[v] != -1) continue;
      depth[v] = depth[u] + 1;
      if (v == to) return depth[v];
      queue.push_back(v);
    }
  }
  return -1;
}

}  // namespace uv::graph
