#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "autograd/ops.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace uv::ag {
namespace {

// Images per parallel chunk. The forward/backward batch loops are
// independent per image except for the weight/bias gradients, which are
// reduced from per-chunk partial buffers in chunk-index order. Chunk
// boundaries depend only on this constant and the batch size — never on
// the thread count — so results are identical for every UV_THREADS value.
constexpr int64_t kConvImageGrain = 4;

// Unpacks one CHW image row into the im2col matrix: (in_c*k*k) x (oh*ow).
void Im2Col(const float* img, const Conv2dSpec& s, Tensor* col) {
  obs::SpanGuard span("im2col", obs::SpanLevel::kFine);
  const int oh = s.out_h(), ow = s.out_w();
  for (int c = 0; c < s.in_channels; ++c) {
    const float* plane = img + static_cast<size_t>(c) * s.in_h * s.in_w;
    for (int ky = 0; ky < s.kernel; ++ky) {
      for (int kx = 0; kx < s.kernel; ++kx) {
        const int row = (c * s.kernel + ky) * s.kernel + kx;
        float* dst = col->row(row);
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * s.stride + ky - s.pad;
          for (int ox = 0; ox < ow; ++ox) {
            const int ix = ox * s.stride + kx - s.pad;
            const int out_idx = oy * ow + ox;
            dst[out_idx] = (iy >= 0 && iy < s.in_h && ix >= 0 && ix < s.in_w)
                               ? plane[iy * s.in_w + ix]
                               : 0.0f;
          }
        }
      }
    }
  }
}

// Scatter-adds the im2col gradient back to the image gradient.
void Col2ImAccum(const Tensor& col, const Conv2dSpec& s, float* img_grad) {
  const int oh = s.out_h(), ow = s.out_w();
  for (int c = 0; c < s.in_channels; ++c) {
    float* plane = img_grad + static_cast<size_t>(c) * s.in_h * s.in_w;
    for (int ky = 0; ky < s.kernel; ++ky) {
      for (int kx = 0; kx < s.kernel; ++kx) {
        const int row = (c * s.kernel + ky) * s.kernel + kx;
        const float* src = col.row(row);
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * s.stride + ky - s.pad;
          if (iy < 0 || iy >= s.in_h) continue;
          for (int ox = 0; ox < ow; ++ox) {
            const int ix = ox * s.stride + kx - s.pad;
            if (ix < 0 || ix >= s.in_w) continue;
            plane[iy * s.in_w + ix] += src[oy * ow + ox];
          }
        }
      }
    }
  }
}

}  // namespace

VarPtr Conv2d(const VarPtr& x, const VarPtr& w, const VarPtr& b,
              const Conv2dSpec& spec) {
  const int patch = spec.in_channels * spec.kernel * spec.kernel;
  const int oh = spec.out_h(), ow = spec.out_w();
  UV_CHECK_EQ(x->cols(), spec.in_channels * spec.in_h * spec.in_w);
  UV_CHECK_EQ(w->rows(), spec.out_channels);
  UV_CHECK_EQ(w->cols(), patch);
  UV_CHECK_EQ(b->rows(), 1);
  UV_CHECK_EQ(b->cols(), spec.out_channels);
  UV_CHECK_GT(oh, 0);
  UV_CHECK_GT(ow, 0);

  const int n = x->rows();
  Tensor out = Tensor::Uninit(n, spec.out_channels * oh * ow);
  obs::SpanGuard fwd_span("conv2d_fwd", obs::SpanLevel::kFine, "batch", n);
  // Each image is independent and writes its own output row. The im2col /
  // product scratch persists per worker thread across chunks and steps
  // (Im2Col and the beta=0 Gemm overwrite every element, so reuse is
  // deterministic and allocation-free in steady state).
  ParallelFor(0, n, kConvImageGrain, [&](int64_t i0, int64_t i1) {
    thread_local Tensor col;
    thread_local Tensor prod;
    col.ResizeUninit(patch, oh * ow);
    prod.ResizeUninit(spec.out_channels, oh * ow);
    for (int64_t i = i0; i < i1; ++i) {
      Im2Col(x->value.row(static_cast<int>(i)), spec, &col);
      Gemm(false, false, 1.0f, w->value, col, 0.0f, &prod);
      float* dst = out.row(static_cast<int>(i));
      for (int c = 0; c < spec.out_channels; ++c) {
        const float bias = b->value.at(0, c);
        const float* src = prod.row(c);
        float* plane = dst + static_cast<size_t>(c) * oh * ow;
        for (int p = 0; p < oh * ow; ++p) plane[p] = src[p] + bias;
      }
    }
  });

  VarPtr xv = x, wv = w, bv = b;
  return MakeOp(
      std::move(out), {x, w, b},
      [xv, wv, bv, spec, patch, oh, ow](Variable* self) {
        const int n = xv->rows();
        obs::SpanGuard bwd_span("conv2d_bwd", obs::SpanLevel::kFine, "batch",
                                n);
        Tensor* gx = xv->requires_grad ? &xv->EnsureGrad() : nullptr;
        Tensor* gw = wv->requires_grad ? &wv->EnsureGrad() : nullptr;
        Tensor* gb = bv->requires_grad ? &bv->EnsureGrad() : nullptr;

        // gx rows are disjoint per image; gw/gb accumulate across images,
        // so each chunk sums into a private partial that is reduced in
        // chunk order afterwards (fixed reduction tree, thread-invariant).
        const int64_t grain = kConvImageGrain;
        const int64_t num_chunks = (n + grain - 1) / grain;
        std::vector<Tensor> gw_parts(
            gw != nullptr ? static_cast<size_t>(num_chunks) : 0);
        std::vector<Tensor> gb_parts(
            gb != nullptr ? static_cast<size_t>(num_chunks) : 0);

        ParallelFor(0, n, grain, [&](int64_t i0, int64_t i1) {
          const int64_t chunk = i0 / grain;
          // Per-thread persistent scratch: col/gout are fully overwritten
          // per image, gcol is zero-filled by the beta=0 Gemm below.
          thread_local Tensor col;
          thread_local Tensor gout;
          thread_local Tensor gcol;
          col.ResizeUninit(patch, oh * ow);
          gout.ResizeUninit(spec.out_channels, oh * ow);
          gcol.ResizeUninit(patch, oh * ow);
          Tensor* gw_part = nullptr;
          Tensor* gb_part = nullptr;
          if (gw != nullptr) {
            gw_parts[chunk] = Tensor(gw->rows(), gw->cols());
            gw_part = &gw_parts[chunk];
          }
          if (gb != nullptr) {
            gb_parts[chunk] = Tensor(1, spec.out_channels);
            gb_part = &gb_parts[chunk];
          }
          for (int64_t i = i0; i < i1; ++i) {
            // Reinterpret this sample's output gradient as (out_c x oh*ow).
            const float* g = self->grad.row(static_cast<int>(i));
            for (int c = 0; c < spec.out_channels; ++c) {
              std::copy(g + static_cast<size_t>(c) * oh * ow,
                        g + static_cast<size_t>(c + 1) * oh * ow,
                        gout.row(c));
            }
            if (gb_part != nullptr) {
              for (int c = 0; c < spec.out_channels; ++c) {
                float acc = 0.0f;
                const float* row = gout.row(c);
                for (int p = 0; p < oh * ow; ++p) acc += row[p];
                gb_part->at(0, c) += acc;
              }
            }
            if (gw_part != nullptr || gx != nullptr) {
              Im2Col(xv->value.row(static_cast<int>(i)), spec, &col);
            }
            if (gw_part != nullptr) {
              Gemm(false, true, 1.0f, gout, col, 1.0f, gw_part);
            }
            if (gx != nullptr) {
              Gemm(true, false, 1.0f, wv->value, gout, 0.0f, &gcol);
              Col2ImAccum(gcol, spec, gx->row(static_cast<int>(i)));
            }
          }
        });

        for (int64_t c = 0; c < num_chunks; ++c) {
          if (gw != nullptr) Axpy(1.0f, gw_parts[c], gw);
          if (gb != nullptr) Axpy(1.0f, gb_parts[c], gb);
        }
      },
      "conv2d");
}

VarPtr MaxPool2d(const VarPtr& x, int channels, int h, int w, int kernel,
                 int stride) {
  UV_CHECK_EQ(x->cols(), channels * h * w);
  const int oh = (h - kernel) / stride + 1;
  const int ow = (w - kernel) / stride + 1;
  UV_CHECK_GT(oh, 0);
  UV_CHECK_GT(ow, 0);
  const int n = x->rows();

  Tensor out = Tensor::Uninit(n, channels * oh * ow);
  // argmax[i][o] = flat input index within the row that won the max.
  auto argmax = std::make_shared<std::vector<int>>(
      static_cast<size_t>(n) * channels * oh * ow);
  ParallelFor(0, n, kConvImageGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* img = x->value.row(static_cast<int>(i));
      float* dst = out.row(static_cast<int>(i));
      int* am = argmax->data() + static_cast<size_t>(i) * channels * oh * ow;
      for (int c = 0; c < channels; ++c) {
        const float* plane = img + static_cast<size_t>(c) * h * w;
        for (int oy = 0; oy < oh; ++oy) {
          for (int ox = 0; ox < ow; ++ox) {
            float best = -std::numeric_limits<float>::infinity();
            int best_idx = 0;
            for (int ky = 0; ky < kernel; ++ky) {
              for (int kx = 0; kx < kernel; ++kx) {
                const int iy = oy * stride + ky;
                const int ix = ox * stride + kx;
                const float v = plane[iy * w + ix];
                if (v > best) {
                  best = v;
                  best_idx = c * h * w + iy * w + ix;
                }
              }
            }
            const int o = (c * oh + oy) * ow + ox;
            dst[o] = best;
            am[o] = best_idx;
          }
        }
      }
    }
  });

  VarPtr xv = x;
  const int out_cols = channels * oh * ow;
  return MakeOp(
      std::move(out), {x},
      [xv, argmax, out_cols](Variable* self) {
        if (!xv->requires_grad) return;
        Tensor& gx = xv->EnsureGrad();
        ParallelFor(0, self->grad.rows(), kConvImageGrain,
                    [&](int64_t i0, int64_t i1) {
                      for (int64_t i = i0; i < i1; ++i) {
                        const float* g = self->grad.row(static_cast<int>(i));
                        const int* am =
                            argmax->data() + static_cast<size_t>(i) * out_cols;
                        float* dst = gx.row(static_cast<int>(i));
                        for (int o = 0; o < out_cols; ++o) dst[am[o]] += g[o];
                      }
                    });
      },
      "max_pool2d");
}

VarPtr GlobalAvgPool(const VarPtr& x, int channels, int h, int w) {
  UV_CHECK_EQ(x->cols(), channels * h * w);
  const int n = x->rows();
  const int plane = h * w;
  Tensor out = Tensor::Uninit(n, channels);
  ParallelFor(0, n, kConvImageGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* img = x->value.row(static_cast<int>(i));
      float* dst = out.row(static_cast<int>(i));
      for (int c = 0; c < channels; ++c) {
        const float* p = img + static_cast<size_t>(c) * plane;
        float acc = 0.0f;
        for (int q = 0; q < plane; ++q) acc += p[q];
        dst[c] = acc / static_cast<float>(plane);
      }
    }
  });
  VarPtr xv = x;
  return MakeOp(
      std::move(out), {x},
      [xv, channels, plane](Variable* self) {
        if (!xv->requires_grad) return;
        Tensor& gx = xv->EnsureGrad();
        const float inv = 1.0f / static_cast<float>(plane);
        ParallelFor(0, self->grad.rows(), kConvImageGrain,
                    [&](int64_t i0, int64_t i1) {
                      for (int64_t i = i0; i < i1; ++i) {
                        const float* g = self->grad.row(static_cast<int>(i));
                        float* dst = gx.row(static_cast<int>(i));
                        for (int c = 0; c < channels; ++c) {
                          const float gv = g[c] * inv;
                          float* p = dst + static_cast<size_t>(c) * plane;
                          for (int q = 0; q < plane; ++q) p[q] += gv;
                        }
                      }
                    });
      },
      "global_avg_pool");
}

}  // namespace uv::ag
