#ifndef UV_AUTOGRAD_GRAPH_ARENA_H_
#define UV_AUTOGRAD_GRAPH_ARENA_H_

#include <cstddef>

#include "util/buffer_pool.h"
#include "util/check.h"

namespace uv::ag {

// Recycling arena for autograd graph nodes.
//
// Every training step builds a fresh graph of identically-shaped Variables
// and tears it down after the optimizer update. MakeParam/MakeConst/MakeOp
// route their allocate_shared through this allocator, so each node (the
// Variable together with its shared_ptr control block — allocate_shared
// emits one combined allocation) is drawn from the process-wide BufferPool
// and returned to it when the step's last reference drops. On the
// steady-state path the same node-sized bucket is handed back and forth
// with no heap traffic; Variable's value/grad tensors recycle through the
// pool the same way from ~Tensor. UV_POOL=0 degrades every acquisition to
// a plain heap allocation, which is the escape hatch used to prove the
// recycling changes nothing numerically.
template <typename T>
struct GraphArena {
  using value_type = T;

  GraphArena() noexcept = default;
  template <typename U>
  GraphArena(const GraphArena<U>&) noexcept {}  // NOLINT(runtime/explicit)

  T* allocate(size_t n) {
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "BufferPool slabs carry fundamental alignment only");
    return static_cast<T*>(BufferPool::Acquire(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) noexcept {
    BufferPool::Release(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const GraphArena<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const GraphArena<U>&) const noexcept {
    return false;
  }
};

}  // namespace uv::ag

#endif  // UV_AUTOGRAD_GRAPH_ARENA_H_
