#include "autograd/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace uv::ag {

int64_t Optimizer::NumParameters() const {
  int64_t total = 0;
  for (const auto& p : params_) total += p->value.size();
  return total;
}

double GlobalGradNorm(const std::vector<VarPtr>& params) {
  double norm_sq = 0.0;
  for (const auto& p : params) {
    if (p->grad.empty()) continue;
    const double n = p->grad.Norm();
    norm_sq += n * n;
  }
  return std::sqrt(norm_sq);
}

AdamOptimizer::AdamOptimizer(std::vector<VarPtr> params,
                             const Options& options)
    : Optimizer(std::move(params)),
      options_(options),
      lr_(options.learning_rate) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void AdamOptimizer::Step() {
  ++step_count_;
  double scale = 1.0;
  if (options_.clip_norm > 0.0) {
    const double norm = GlobalGradNorm(params_);
    if (norm > options_.clip_norm) scale = options_.clip_norm / norm;
  }
  const double bias1 = 1.0 - std::pow(options_.beta1, step_count_);
  const double bias2 = 1.0 - std::pow(options_.beta2, step_count_);
  const float b1 = static_cast<float>(options_.beta1);
  const float b2 = static_cast<float>(options_.beta2);
  for (size_t k = 0; k < params_.size(); ++k) {
    Variable* p = params_[k].get();
    if (p->grad.empty()) continue;
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* m = m_[k].data();
    float* v = v_[k].data();
    const float sc = static_cast<float>(scale);
    for (int64_t i = 0; i < p->value.size(); ++i) {
      const float gi = g[i] * sc;
      m[i] = b1 * m[i] + (1.0f - b1) * gi;
      v[i] = b2 * v[i] + (1.0f - b2) * gi * gi;
      const double mhat = m[i] / bias1;
      const double vhat = v[i] / bias2;
      w[i] -= static_cast<float>(lr_ * mhat /
                                 (std::sqrt(vhat) + options_.epsilon));
    }
  }
}

SgdOptimizer::SgdOptimizer(std::vector<VarPtr> params, double learning_rate)
    : Optimizer(std::move(params)), lr_(learning_rate) {}

void SgdOptimizer::Step() {
  for (const auto& p : params_) {
    if (p->grad.empty()) continue;
    float* w = p->value.data();
    const float* g = p->grad.data();
    for (int64_t i = 0; i < p->value.size(); ++i) {
      w[i] -= static_cast<float>(lr_) * g[i];
    }
  }
}

}  // namespace uv::ag
