#include <cmath>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace uv::ag {

VarPtr GatherRows(const VarPtr& x,
                  const std::shared_ptr<const std::vector<int>>& indices) {
  Tensor out = uv::GatherRows(x->value, *indices);
  VarPtr xv = x;
  return MakeOp(
      std::move(out), {x},
      [xv, indices](Variable* self) {
        if (!xv->requires_grad) return;
        Tensor& gx = xv->EnsureGrad();
        const auto& idx = *indices;
        for (size_t e = 0; e < idx.size(); ++e) {
          const float* g = self->grad.row(static_cast<int>(e));
          float* dst = gx.row(idx[e]);
          for (int c = 0; c < self->grad.cols(); ++c) dst[c] += g[c];
        }
      },
      "gather_rows");
}

VarPtr SegmentSoftmax(const VarPtr& scores,
                      const std::shared_ptr<const std::vector<int>>& offsets) {
  UV_CHECK_EQ(scores->cols(), 1);
  const auto& off = *offsets;
  const int num_segments = static_cast<int>(off.size()) - 1;
  UV_CHECK_EQ(off.back(), scores->rows());

  Tensor out(scores->rows(), 1);
  const float* s = scores->value.data();
  float* o = out.data();
  for (int i = 0; i < num_segments; ++i) {
    const int lo = off[i], hi = off[i + 1];
    if (lo == hi) continue;
    float mx = -1e30f;
    for (int e = lo; e < hi; ++e) mx = std::max(mx, s[e]);
    double total = 0.0;
    for (int e = lo; e < hi; ++e) {
      o[e] = std::exp(s[e] - mx);
      total += o[e];
    }
    const float inv = total > 0.0 ? static_cast<float>(1.0 / total) : 0.0f;
    for (int e = lo; e < hi; ++e) o[e] *= inv;
  }

  VarPtr sv = scores;
  Tensor soft = out;
  return MakeOp(
      std::move(out), {scores},
      [sv, offsets, soft = std::move(soft)](Variable* self) {
        if (!sv->requires_grad) return;
        const auto& off = *offsets;
        Tensor gs(soft.rows(), 1);
        const float* p = soft.data();
        const float* g = self->grad.data();
        float* gd = gs.data();
        for (size_t i = 0; i + 1 < off.size(); ++i) {
          const int lo = off[i], hi = off[i + 1];
          float dot = 0.0f;
          for (int e = lo; e < hi; ++e) dot += p[e] * g[e];
          for (int e = lo; e < hi; ++e) gd[e] = p[e] * (g[e] - dot);
        }
        sv->AccumGrad(gs);
      },
      "segment_softmax");
}

VarPtr SegmentWeightedSum(
    const VarPtr& alpha, const VarPtr& feats,
    const std::shared_ptr<const std::vector<int>>& offsets) {
  UV_CHECK_EQ(alpha->cols(), 1);
  UV_CHECK_EQ(alpha->rows(), feats->rows());
  const auto& off = *offsets;
  const int num_segments = static_cast<int>(off.size()) - 1;
  UV_CHECK_EQ(off.back(), feats->rows());
  const int d = feats->cols();

  Tensor out(num_segments, d);
  const float* a = alpha->value.data();
  for (int i = 0; i < num_segments; ++i) {
    float* dst = out.row(i);
    for (int e = off[i]; e < off[i + 1]; ++e) {
      const float w = a[e];
      const float* f = feats->value.row(e);
      for (int c = 0; c < d; ++c) dst[c] += w * f[c];
    }
  }

  VarPtr av = alpha, fv = feats;
  return MakeOp(
      std::move(out), {alpha, feats},
      [av, fv, offsets, d](Variable* self) {
        const auto& off = *offsets;
        const bool need_a = av->requires_grad;
        const bool need_f = fv->requires_grad;
        Tensor* ga = need_a ? &av->EnsureGrad() : nullptr;
        Tensor* gf = need_f ? &fv->EnsureGrad() : nullptr;
        for (size_t i = 0; i + 1 < off.size(); ++i) {
          const float* gout = self->grad.row(static_cast<int>(i));
          for (int e = off[i]; e < off[i + 1]; ++e) {
            const float* f = fv->value.row(e);
            if (need_a) {
              float acc = 0.0f;
              for (int c = 0; c < d; ++c) acc += gout[c] * f[c];
              ga->at(e, 0) += acc;
            }
            if (need_f) {
              const float w = av->value.at(e, 0);
              float* gfe = gf->row(e);
              for (int c = 0; c < d; ++c) gfe[c] += w * gout[c];
            }
          }
        }
      },
      "segment_weighted_sum");
}

VarPtr SegmentSumByIds(const VarPtr& x,
                       const std::shared_ptr<const std::vector<int>>& seg_ids,
                       int num_segments) {
  UV_CHECK_EQ(static_cast<long long>(seg_ids->size()),
              static_cast<long long>(x->rows()));
  Tensor out(num_segments, x->cols());
  const auto& ids = *seg_ids;
  for (int r = 0; r < x->rows(); ++r) {
    const int k = ids[r];
    if (k < 0) continue;
    UV_CHECK_LT(k, num_segments);
    const float* src = x->value.row(r);
    float* dst = out.row(k);
    for (int c = 0; c < x->cols(); ++c) dst[c] += src[c];
  }
  VarPtr xv = x;
  return MakeOp(
      std::move(out), {x},
      [xv, seg_ids](Variable* self) {
        if (!xv->requires_grad) return;
        Tensor& gx = xv->EnsureGrad();
        const auto& ids = *seg_ids;
        for (int r = 0; r < gx.rows(); ++r) {
          const int k = ids[r];
          if (k < 0) continue;
          const float* g = self->grad.row(k);
          float* dst = gx.row(r);
          for (int c = 0; c < gx.cols(); ++c) dst[c] += g[c];
        }
      },
      "segment_sum_by_ids");
}

}  // namespace uv::ag
