#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "autograd/ops.h"
#include "obs/trace.h"
#include "tensor/forward_ops.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace uv::ag {
namespace {

// Rows per parallel chunk in the backward scatters. Chunk boundaries depend
// only on these constants and the problem size, so outputs are identical
// for every UV_THREADS value; all chunk bodies below write disjoint rows.
// The forward halves live in tensor/forward_ops.cc (shared with the
// grad-free inference engine) with the same contract.
using uv::kSegmentGrain;
constexpr int64_t kRowGrain = 256;

// The scatter-inverse index now lives in tensor/forward_ops.h so the
// grad-free engine builds bit-identical segment sums from the same walk.
using DestIndex = uv::SegmentDestIndex;

// Memo-cache of inverse scatter indices keyed on the identity of the
// shared index vector. The attention layers gather with the same index
// vectors every epoch (the graph context is built once per Train), so
// rebuilding the DestIndex on every op-node construction dominated
// steady-state heap traffic. Entries are validated against a weak_ptr to
// the owning vector: a later allocation recycled at the same address can
// never alias a stale entry.
std::shared_ptr<const DestIndex> CachedDestIndex(
    const std::shared_ptr<const std::vector<int>>& ids,
    int num_destinations) {
  struct Entry {
    std::weak_ptr<const std::vector<int>> owner;
    int num_destinations;
    std::shared_ptr<const DestIndex> index;
  };
  static std::mutex mu;
  static std::map<const void*, Entry>& cache =
      *new std::map<const void*, Entry>();  // Leaked: outlives all graphs.
  std::lock_guard<std::mutex> lock(mu);
  const auto it = cache.find(ids.get());
  if (it != cache.end() && it->second.num_destinations == num_destinations &&
      it->second.owner.lock() == ids) {
    return it->second.index;
  }
  // Short-lived index vectors (per-epoch cluster assignments) insert and
  // die every step; sweep their expired entries to bound the cache.
  if (cache.size() >= 64) {
    for (auto e = cache.begin(); e != cache.end();) {
      e = e->second.owner.expired() ? cache.erase(e) : std::next(e);
    }
  }
  auto index = std::make_shared<const DestIndex>(
      BuildSegmentDestIndex(*ids, num_destinations));
  cache[ids.get()] = Entry{ids, num_destinations, index};
  return index;
}

}  // namespace

VarPtr GatherRows(const VarPtr& x,
                  const std::shared_ptr<const std::vector<int>>& indices) {
  Tensor out = [&] {
    obs::SpanGuard span("gather_rows", obs::SpanLevel::kFine, "rows",
                        static_cast<int64_t>(indices->size()));
    return uv::GatherRows(x->value, *indices);
  }();
  VarPtr xv = x;
  // The backward scatter can hit the same source row from many gathered
  // rows; partition it by destination so workers never share a row. The
  // inverse index is memoized on the shared indices vector.
  std::shared_ptr<const DestIndex> dest =
      xv->requires_grad ? CachedDestIndex(indices, x->rows()) : nullptr;
  return MakeOp(
      std::move(out), {x},
      [xv, dest](Variable* self) {
        if (!xv->requires_grad) return;
        obs::SpanGuard span("scatter_add", obs::SpanLevel::kFine, "rows",
                            xv->rows());
        Tensor& gx = xv->EnsureGrad();
        const int cols = self->grad.cols();
        ParallelFor(0, gx.rows(), kRowGrain, [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            float* dst = gx.row(static_cast<int>(r));
            const int lo = dest->offsets[r];
            const int hi = dest->offsets[r + 1];
            for (int s = lo; s < hi; ++s) {
              const float* g = self->grad.row(dest->sources[s]);
              for (int c = 0; c < cols; ++c) dst[c] += g[c];
            }
          }
        });
      },
      "gather_rows");
}

VarPtr SegmentSoftmax(const VarPtr& scores,
                      const std::shared_ptr<const std::vector<int>>& offsets) {
  const int num_segments = static_cast<int>(offsets->size()) - 1;
  Tensor out;
  obs::SpanGuard fwd_span("segment_softmax", obs::SpanLevel::kFine,
                          "segments", num_segments);
  uv::SegmentSoftmaxInto(scores->value, *offsets, &out);

  VarPtr sv = scores;
  Tensor soft = out;
  return MakeOp(
      std::move(out), {scores},
      [sv, offsets, soft = std::move(soft)](Variable* self) {
        if (!sv->requires_grad) return;
        const auto& off = *offsets;
        const int num_segments = static_cast<int>(off.size()) - 1;
        // Same tiling argument as the forward: every element is written.
        Tensor gs = Tensor::Uninit(soft.rows(), 1);
        const float* p = soft.data();
        const float* g = self->grad.data();
        float* gd = gs.data();
        ParallelFor(0, num_segments, kSegmentGrain,
                    [&](int64_t s0, int64_t s1) {
                      for (int64_t i = s0; i < s1; ++i) {
                        const int lo = off[i], hi = off[i + 1];
                        float dot = 0.0f;
                        for (int e = lo; e < hi; ++e) dot += p[e] * g[e];
                        for (int e = lo; e < hi; ++e) {
                          gd[e] = p[e] * (g[e] - dot);
                        }
                      }
                    });
        sv->AccumGrad(std::move(gs));
      },
      "segment_softmax");
}

VarPtr SegmentWeightedSum(
    const VarPtr& alpha, const VarPtr& feats,
    const std::shared_ptr<const std::vector<int>>& offsets) {
  const int num_segments = static_cast<int>(offsets->size()) - 1;
  const int d = feats->cols();
  Tensor out;
  obs::SpanGuard fwd_span("segment_weighted_sum", obs::SpanLevel::kFine,
                          "segments", num_segments);
  uv::SegmentWeightedSumInto(alpha->value, feats->value, *offsets, &out);

  VarPtr av = alpha, fv = feats;
  return MakeOp(
      std::move(out), {alpha, feats},
      [av, fv, offsets, d](Variable* self) {
        const auto& off = *offsets;
        const int num_segments = static_cast<int>(off.size()) - 1;
        const bool need_a = av->requires_grad;
        const bool need_f = fv->requires_grad;
        Tensor* ga = need_a ? &av->EnsureGrad() : nullptr;
        Tensor* gf = need_f ? &fv->EnsureGrad() : nullptr;
        // Each edge e belongs to exactly one segment, so ga rows and gf
        // rows touched by different segments are disjoint.
        ParallelFor(0, num_segments, kSegmentGrain,
                    [&](int64_t s0, int64_t s1) {
                      for (int64_t i = s0; i < s1; ++i) {
                        const float* gout =
                            self->grad.row(static_cast<int>(i));
                        for (int e = off[i]; e < off[i + 1]; ++e) {
                          const float* f = fv->value.row(e);
                          if (need_a) {
                            float acc = 0.0f;
                            for (int c = 0; c < d; ++c) acc += gout[c] * f[c];
                            ga->at(e, 0) += acc;
                          }
                          if (need_f) {
                            const float w = av->value.at(e, 0);
                            float* gfe = gf->row(e);
                            for (int c = 0; c < d; ++c) gfe[c] += w * gout[c];
                          }
                        }
                      }
                    });
      },
      "segment_weighted_sum");
}

VarPtr SegmentSumByIds(const VarPtr& x,
                       const std::shared_ptr<const std::vector<int>>& seg_ids,
                       int num_segments) {
  UV_CHECK_EQ(static_cast<long long>(seg_ids->size()),
              static_cast<long long>(x->rows()));
  const auto& ids = *seg_ids;
  for (int r = 0; r < x->rows(); ++r) {
    if (ids[r] >= 0) UV_CHECK_LT(ids[r], num_segments);
  }
  // Forward is a scatter-sum keyed by ids; run it partitioned by
  // destination segment. Source rows are visited in ascending order per
  // segment, matching the serial scatter's accumulation order exactly.
  const auto dest = CachedDestIndex(seg_ids, num_segments);
  Tensor out;
  obs::SpanGuard fwd_span("segment_sum", obs::SpanLevel::kFine, "segments",
                          num_segments);
  uv::SegmentSumInto(x->value, *dest, &out);
  VarPtr xv = x;
  return MakeOp(
      std::move(out), {x},
      [xv, seg_ids](Variable* self) {
        if (!xv->requires_grad) return;
        obs::SpanGuard span("scatter_add", obs::SpanLevel::kFine, "rows",
                            xv->rows());
        Tensor& gx = xv->EnsureGrad();
        const auto& ids = *seg_ids;
        ParallelFor(0, gx.rows(), kRowGrain, [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            const int k = ids[r];
            if (k < 0) continue;
            const float* g = self->grad.row(k);
            float* dst = gx.row(static_cast<int>(r));
            for (int c = 0; c < gx.cols(); ++c) dst[c] += g[c];
          }
        });
      },
      "segment_sum_by_ids");
}

}  // namespace uv::ag
