#ifndef UV_AUTOGRAD_GATED_MLP_H_
#define UV_AUTOGRAD_GATED_MLP_H_

#include "autograd/variable.h"

namespace uv::ag {

// Fused forward/backward for the contextual master-slave gate (paper
// eq. 20-22): every region i gets its own slave classifier whose parameters
// are the master 2-layer MLP parameters elementwise-multiplied by a
// region-specific filter F_i in (0,1)^P.
//
// The filter layout per region (row of `filter`) is the flattened parameter
// vector of the classifier, in this order:
//   [ W1 (d_in*d_hidden) | b1 (d_hidden) | W2 (d_hidden) | b2 (1) ]
// so P = d_in*d_hidden + 2*d_hidden + 1 = GatedMlpFilterSize(...).
//
// Computes, per region i:
//   logit_i = relu(x_i (F_i^W1 ∘ W1) + F_i^b1 ∘ b1) (F_i^W2 ∘ W2)
//             + F_i^b2 * b2
// Gradients flow into x, filter, and all four master parameters.
int GatedMlpFilterSize(int d_in, int d_hidden);

// x: (N x d_in), filter: (N x P), w1: (d_in x d_hidden), b1: (1 x d_hidden),
// w2: (d_hidden x 1), b2: (1 x 1). Returns (N x 1) logits.
VarPtr GatedMlp(const VarPtr& x, const VarPtr& filter, const VarPtr& w1,
                const VarPtr& b1, const VarPtr& w2, const VarPtr& b2);

}  // namespace uv::ag

#endif  // UV_AUTOGRAD_GATED_MLP_H_
