#ifndef UV_AUTOGRAD_VARIABLE_H_
#define UV_AUTOGRAD_VARIABLE_H_

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>

#include "tensor/tensor.h"
#include "util/check.h"

namespace uv::ag {

class Variable;
using VarPtr = std::shared_ptr<Variable>;

// Move-only type-erased callable with fixed inline storage: the backward
// closure of every op lives inside its Variable instead of in a separate
// std::function heap allocation, so graph nodes recycle as a single
// pool-sized block. Captures larger than kInlineBytes fail to compile —
// bump the constant rather than silently fall back to the heap.
class BackwardFn {
 public:
  static constexpr size_t kInlineBytes = 192;

  BackwardFn() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, BackwardFn>>>
  BackwardFn(F&& f) {  // NOLINT(runtime/explicit)
    static_assert(sizeof(D) <= kInlineBytes,
                  "backward capture exceeds BackwardFn::kInlineBytes");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "backward capture over-aligned for inline storage");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "backward capture must be nothrow-movable");
    ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
    invoke_ = [](void* b, Variable* v) { (*static_cast<D*>(b))(v); };
    relocate_ = [](void* dst, void* src) {
      ::new (dst) D(std::move(*static_cast<D*>(src)));
      static_cast<D*>(src)->~D();
    };
    destroy_ = [](void* b) { static_cast<D*>(b)->~D(); };
  }

  BackwardFn(const BackwardFn&) = delete;
  BackwardFn& operator=(const BackwardFn&) = delete;
  BackwardFn(BackwardFn&& other) noexcept { MoveFrom(&other); }
  BackwardFn& operator=(BackwardFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(&other);
    }
    return *this;
  }
  ~BackwardFn() { Reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }
  void operator()(Variable* v) { invoke_(buf_, v); }

  void Reset() {
    if (destroy_ != nullptr) destroy_(buf_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  void MoveFrom(BackwardFn* other) {
    if (other->invoke_ == nullptr) return;
    other->relocate_(buf_, other->buf_);
    invoke_ = other->invoke_;
    relocate_ = other->relocate_;
    destroy_ = other->destroy_;
    other->invoke_ = nullptr;
    other->relocate_ = nullptr;
    other->destroy_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void (*invoke_)(void*, Variable*) = nullptr;
  void (*relocate_)(void*, void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

// Fixed-capacity input-edge list (ops have at most 6 inputs — GatedMlp).
// Inline storage keeps the whole graph node in one recycled block instead
// of a per-node std::vector allocation.
class VarList {
 public:
  static constexpr size_t kCapacity = 6;

  VarList() noexcept = default;
  VarList(std::initializer_list<VarPtr> init) {
    UV_CHECK_LE(init.size(), kCapacity);
    for (const VarPtr& p : init) items_[size_++] = p;
  }
  VarList(VarList&& other) noexcept : size_(other.size_) {
    for (size_t i = 0; i < size_; ++i) items_[i] = std::move(other.items_[i]);
    other.size_ = 0;
  }
  VarList& operator=(VarList&& other) noexcept {
    if (this != &other) {
      clear();
      size_ = other.size_;
      for (size_t i = 0; i < size_; ++i) {
        items_[i] = std::move(other.items_[i]);
      }
      other.size_ = 0;
    }
    return *this;
  }
  VarList(const VarList&) = delete;
  VarList& operator=(const VarList&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  VarPtr& operator[](size_t i) { return items_[i]; }
  const VarPtr& operator[](size_t i) const { return items_[i]; }
  VarPtr* begin() { return items_; }
  VarPtr* end() { return items_ + size_; }
  const VarPtr* begin() const { return items_; }
  const VarPtr* end() const { return items_ + size_; }

  void clear() {
    for (size_t i = 0; i < size_; ++i) items_[i].reset();
    size_ = 0;
  }

 private:
  VarPtr items_[kCapacity];
  size_t size_ = 0;
};

// A node in the reverse-mode autodiff graph. Holds a value tensor, the
// (lazily allocated) gradient accumulator, the input edges, and a backward
// function that reads this node's gradient and accumulates into the inputs'
// gradients. Graphs are built eagerly by the op constructors in ops.h;
// nodes and their tensors recycle through the BufferPool (see
// graph_arena.h), so steady-state steps rebuild the graph without heap
// traffic.
class Variable {
 public:
  Variable(Tensor value_in, bool requires_grad_in)
      : value(std::move(value_in)), requires_grad(requires_grad_in) {}

  Variable(const Variable&) = delete;
  Variable& operator=(const Variable&) = delete;

  Tensor value;
  Tensor grad;  // Empty until the first accumulation.
  bool requires_grad;
  VarList inputs;
  // Invoked once during Backward with this node as argument; must only
  // accumulate into inputs that have requires_grad set.
  BackwardFn backward_fn;
  const char* op_name = "leaf";
  // Traversal stamp owned by Backward: a node is visited when its mark
  // equals the current (process-unique) traversal id. Replaces a per-call
  // hash set so steady-state backward passes stay allocation-free.
  uint64_t visit_mark = 0;

  int rows() const { return value.rows(); }
  int cols() const { return value.cols(); }

  // Adds g into the gradient accumulator. The first accumulation into an
  // empty grad copies (lvalue) or steals (rvalue) g outright instead of
  // zero-filling and adding — one pass and zero allocations saved per
  // backward edge, bit-identical either way.
  void AccumGrad(const Tensor& g);
  void AccumGrad(Tensor&& g);

  // Returns the gradient, allocating a zero tensor if none accumulated
  // yet. Reacquired slabs are zeroed explicitly, so the accumulate-into
  // contract is unchanged whether the slab is fresh or recycled.
  Tensor& EnsureGrad();
};

// Creates a trainable leaf (requires_grad = true).
VarPtr MakeParam(Tensor value);

// Creates a constant leaf (requires_grad = false).
VarPtr MakeConst(Tensor value);

// Internal helper for op implementations: creates a non-leaf node whose
// requires_grad is inherited from the inputs.
VarPtr MakeOp(Tensor value, VarList inputs, BackwardFn backward_fn,
              const char* name);

// Runs reverse-mode differentiation from a scalar (1x1) loss node. Gradients
// accumulate into every reachable node with requires_grad.
void Backward(const VarPtr& loss);

// Clears gradients on the given variables (typically the parameter list).
void ZeroGrads(const std::vector<VarPtr>& vars);

}  // namespace uv::ag

#endif  // UV_AUTOGRAD_VARIABLE_H_
