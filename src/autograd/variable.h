#ifndef UV_AUTOGRAD_VARIABLE_H_
#define UV_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace uv::ag {

class Variable;
using VarPtr = std::shared_ptr<Variable>;

// A node in the reverse-mode autodiff graph. Holds a value tensor, the
// (lazily allocated) gradient accumulator, the input edges, and a backward
// function that reads this node's gradient and accumulates into the inputs'
// gradients. Graphs are built eagerly by the op constructors in ops.h.
class Variable {
 public:
  Variable(Tensor value_in, bool requires_grad_in)
      : value(std::move(value_in)), requires_grad(requires_grad_in) {}

  Variable(const Variable&) = delete;
  Variable& operator=(const Variable&) = delete;

  Tensor value;
  Tensor grad;  // Empty until the first accumulation.
  bool requires_grad;
  std::vector<VarPtr> inputs;
  // Invoked once during Backward with this node as argument; must only
  // accumulate into inputs that have requires_grad set.
  std::function<void(Variable*)> backward_fn;
  const char* op_name = "leaf";

  int rows() const { return value.rows(); }
  int cols() const { return value.cols(); }

  // Adds g into the gradient accumulator (allocating zeros on first use).
  void AccumGrad(const Tensor& g);

  // Returns the gradient, allocating a zero tensor if none accumulated yet.
  Tensor& EnsureGrad();
};

// Creates a trainable leaf (requires_grad = true).
VarPtr MakeParam(Tensor value);

// Creates a constant leaf (requires_grad = false).
VarPtr MakeConst(Tensor value);

// Internal helper for op implementations: creates a non-leaf node whose
// requires_grad is inherited from the inputs.
VarPtr MakeOp(Tensor value, std::vector<VarPtr> inputs,
              std::function<void(Variable*)> backward_fn, const char* name);

// Runs reverse-mode differentiation from a scalar (1x1) loss node. Gradients
// accumulate into every reachable node with requires_grad.
void Backward(const VarPtr& loss);

// Clears gradients on the given variables (typically the parameter list).
void ZeroGrads(const std::vector<VarPtr>& vars);

}  // namespace uv::ag

#endif  // UV_AUTOGRAD_VARIABLE_H_
