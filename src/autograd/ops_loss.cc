#include <cmath>
#include <utility>

#include "autograd/ops.h"
#include "util/check.h"

namespace uv::ag {

VarPtr BceWithLogits(const VarPtr& logits, const Tensor& labels,
                     const Tensor* sample_weights) {
  UV_CHECK_EQ(logits->cols(), 1);
  UV_CHECK_EQ(labels.rows(), logits->rows());
  UV_CHECK_EQ(labels.cols(), 1);
  if (sample_weights != nullptr) {
    UV_CHECK_EQ(sample_weights->rows(), logits->rows());
    UV_CHECK_EQ(sample_weights->cols(), 1);
  }
  const int n = logits->rows();
  UV_CHECK_GT(n, 0);

  // Stable per-sample loss: max(z,0) - z*y + log(1 + exp(-|z|)).
  double total_loss = 0.0;
  double total_weight = 0.0;
  for (int i = 0; i < n; ++i) {
    const float z = logits->value.at(i, 0);
    const float y = labels.at(i, 0);
    const float w = sample_weights ? sample_weights->at(i, 0) : 1.0f;
    const double l = std::max(z, 0.0f) - z * y + std::log1p(std::exp(-std::fabs(z)));
    total_loss += w * l;
    total_weight += w;
  }
  UV_CHECK(total_weight > 0.0);
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(total_loss / total_weight);

  VarPtr lv = logits;
  Tensor labels_copy = labels;
  Tensor weights_copy = sample_weights ? *sample_weights : Tensor();
  const float inv_weight = static_cast<float>(1.0 / total_weight);
  return MakeOp(
      std::move(out), {logits},
      [lv, labels_copy = std::move(labels_copy),
       weights_copy = std::move(weights_copy), inv_weight](Variable* self) {
        if (!lv->requires_grad) return;
        const float g = self->grad.at(0, 0);
        const int n = lv->rows();
        Tensor gl = Tensor::Uninit(n, 1);
        for (int i = 0; i < n; ++i) {
          const float z = lv->value.at(i, 0);
          const float y = labels_copy.at(i, 0);
          const float w = weights_copy.empty() ? 1.0f : weights_copy.at(i, 0);
          // d/dz = sigmoid(z) - y.
          const float p = z >= 0.0f ? 1.0f / (1.0f + std::exp(-z))
                                    : std::exp(z) / (1.0f + std::exp(z));
          gl.at(i, 0) = g * w * inv_weight * (p - y);
        }
        lv->AccumGrad(std::move(gl));
      },
      "bce_with_logits");
}

VarPtr PuRankLoss(const VarPtr& scores, const std::vector<int>& positive,
                  const std::vector<int>& unlabeled) {
  UV_CHECK_EQ(scores->cols(), 1);
  const long long pairs =
      static_cast<long long>(positive.size()) * unlabeled.size();
  Tensor out(1, 1);
  if (pairs == 0) {
    // No rankable pairs: the loss is identically zero and contributes no
    // gradient (e.g. a fold whose training split has no positive cluster).
    return MakeOp(
        std::move(out), {scores}, [](Variable*) {}, "pu_rank_loss");
  }

  double total = 0.0;
  for (int i : positive) {
    const float si = scores->value.at(i, 0);
    for (int j : unlabeled) {
      const double diff = 1.0 - (si - scores->value.at(j, 0));
      total += diff * diff;
    }
  }
  out.at(0, 0) = static_cast<float>(total / static_cast<double>(pairs));

  VarPtr sv = scores;
  std::vector<int> pos = positive;
  std::vector<int> neg = unlabeled;
  return MakeOp(
      std::move(out), {scores},
      [sv, pos = std::move(pos), neg = std::move(neg), pairs](Variable* self) {
        if (!sv->requires_grad) return;
        const float g =
            self->grad.at(0, 0) / static_cast<float>(pairs);
        Tensor gs(sv->rows(), 1);
        // d/ds_i = sum_j -2 (1 - (s_i - s_j)); d/ds_j = +2 (1 - (s_i - s_j)).
        for (int i : pos) {
          const float si = sv->value.at(i, 0);
          for (int j : neg) {
            const float diff = 1.0f - (si - sv->value.at(j, 0));
            gs.at(i, 0) += g * -2.0f * diff;
            gs.at(j, 0) += g * 2.0f * diff;
          }
        }
        sv->AccumGrad(std::move(gs));
      },
      "pu_rank_loss");
}

}  // namespace uv::ag
