#include "autograd/grad_check.h"

#include <cmath>
#include <cstdio>

namespace uv::ag {

GradCheckResult CheckGradients(const std::vector<VarPtr>& params,
                               const std::function<VarPtr()>& build_loss,
                               double epsilon, double tolerance) {
  GradCheckResult result;
  result.ok = true;

  // Analytic pass.
  ZeroGrads(params);
  VarPtr loss = build_loss();
  Backward(loss);
  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (const auto& p : params) {
    analytic.push_back(p->grad.empty()
                           ? Tensor(p->value.rows(), p->value.cols())
                           : p->grad);
  }

  // Numeric pass: central differences, element by element.
  for (size_t k = 0; k < params.size(); ++k) {
    Tensor& w = params[k]->value;
    for (int64_t i = 0; i < w.size(); ++i) {
      const float saved = w[i];
      w[i] = saved + static_cast<float>(epsilon);
      const double up = build_loss()->value.at(0, 0);
      w[i] = saved - static_cast<float>(epsilon);
      const double down = build_loss()->value.at(0, 0);
      w[i] = saved;
      const double numeric = (up - down) / (2.0 * epsilon);
      const double exact = analytic[k][i];
      const double abs_err = std::fabs(numeric - exact);
      const double denom = std::max(1.0, std::max(std::fabs(numeric),
                                                  std::fabs(exact)));
      const double rel_err = abs_err / denom;
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      if (rel_err > tolerance && abs_err > tolerance) {
        result.ok = false;
        if (result.detail.empty()) {
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "param[%zu] flat index %lld: analytic=%.6g "
                        "numeric=%.6g",
                        k, static_cast<long long>(i), exact, numeric);
          result.detail = buf;
        }
      }
    }
  }
  return result;
}

}  // namespace uv::ag
