#include "autograd/variable.h"

#include <atomic>
#include <vector>

#include "autograd/graph_arena.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace uv::ag {

void Variable::AccumGrad(const Tensor& g) {
  UV_CHECK(g.rows() == value.rows() && g.cols() == value.cols());
  if (grad.empty() && g.size() > 0) {
    grad = g;  // First contribution: one memcpy, no zero-fill + add pass.
    return;
  }
  Axpy(1.0f, g, &grad);
}

void Variable::AccumGrad(Tensor&& g) {
  UV_CHECK(g.rows() == value.rows() && g.cols() == value.cols());
  if (grad.empty() && g.size() > 0) {
    grad = std::move(g);  // First contribution: steal the slab outright.
    return;
  }
  Axpy(1.0f, g, &grad);
}

Tensor& Variable::EnsureGrad() {
  if (grad.empty() && value.size() > 0) {
    grad = Tensor(value.rows(), value.cols());
  }
  return grad;
}

VarPtr MakeParam(Tensor value) {
  return std::allocate_shared<Variable>(GraphArena<Variable>{},
                                        std::move(value),
                                        /*requires_grad_in=*/true);
}

VarPtr MakeConst(Tensor value) {
  return std::allocate_shared<Variable>(GraphArena<Variable>{},
                                        std::move(value),
                                        /*requires_grad_in=*/false);
}

VarPtr MakeOp(Tensor value, VarList inputs, BackwardFn backward_fn,
              const char* name) {
  bool needs_grad = false;
  for (const auto& in : inputs) {
    if (in && in->requires_grad) {
      needs_grad = true;
      break;
    }
  }
  auto out = std::allocate_shared<Variable>(GraphArena<Variable>{},
                                            std::move(value), needs_grad);
  if (needs_grad) {
    out->inputs = std::move(inputs);
    out->backward_fn = std::move(backward_fn);
  }
  out->op_name = name;
  return out;
}

void Backward(const VarPtr& loss) {
  UV_CHECK(loss != nullptr);
  UV_CHECK_EQ(loss->value.rows(), 1);
  UV_CHECK_EQ(loss->value.cols(), 1);
  obs::SpanGuard span("backward", obs::SpanLevel::kCoarse);

  // Iterative post-order DFS to get a topological order of the subgraph of
  // nodes that require gradients. Visited-tracking uses a process-unique
  // stamp per traversal (every node belongs to exactly one graph, so
  // concurrent Backward calls on different graphs never share nodes), and
  // the traversal vectors keep their capacity across calls — a
  // steady-state backward pass performs no heap allocation here.
  static std::atomic<uint64_t> traversal_counter{0};
  const uint64_t mark =
      traversal_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  struct Frame {
    Variable* node;
    size_t next_child;
  };
  thread_local std::vector<Variable*> topo;
  thread_local std::vector<Frame> stack;
  topo.clear();
  stack.clear();
  if (loss->requires_grad) {
    stack.push_back({loss.get(), 0});
    loss->visit_mark = mark;
  }
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_child < frame.node->inputs.size()) {
      Variable* child = frame.node->inputs[frame.next_child++].get();
      if (child != nullptr && child->requires_grad &&
          child->visit_mark != mark) {
        child->visit_mark = mark;
        stack.push_back({child, 0});
      }
    } else {
      topo.push_back(frame.node);
      stack.pop_back();
    }
  }

  Tensor seed(1, 1);
  seed.at(0, 0) = 1.0f;
  loss->AccumGrad(std::move(seed));

  // topo is post-order (children first); iterate in reverse for backward.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Variable* node = *it;
    if (node->backward_fn && !node->grad.empty()) {
      node->backward_fn(node);
    }
  }
}

void ZeroGrads(const std::vector<VarPtr>& vars) {
  for (const auto& v : vars) {
    if (v && !v->grad.empty()) v->grad.Zero();
  }
}

}  // namespace uv::ag
