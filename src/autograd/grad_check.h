#ifndef UV_AUTOGRAD_GRAD_CHECK_H_
#define UV_AUTOGRAD_GRAD_CHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace uv::ag {

// Result of a finite-difference gradient verification.
struct GradCheckResult {
  bool ok = false;
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  std::string detail;  // "param[2](1,3): analytic=.. numeric=.." on failure.
};

// Verifies analytic gradients of a scalar-valued computation against central
// finite differences. `build_loss` must rebuild the graph from the current
// parameter values and return a 1x1 loss node each time it is called.
//
// Every element of every parameter is perturbed, so keep the tensors small
// in tests. `tolerance` bounds max(abs_err, rel_err) per element.
GradCheckResult CheckGradients(
    const std::vector<VarPtr>& params,
    const std::function<VarPtr()>& build_loss, double epsilon = 1e-3,
    double tolerance = 2e-2);

}  // namespace uv::ag

#endif  // UV_AUTOGRAD_GRAD_CHECK_H_
