#ifndef UV_AUTOGRAD_OPTIMIZER_H_
#define UV_AUTOGRAD_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace uv::ag {

// First-order optimizer interface over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<VarPtr> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update using the accumulated gradients, then the caller
  // typically calls ZeroGradients() before the next backward pass.
  virtual void Step() = 0;

  void ZeroGradients() { ZeroGrads(params_); }

  const std::vector<VarPtr>& params() const { return params_; }

  // Total number of scalar parameters (for Table III model-size rows).
  int64_t NumParameters() const;

  // Multiplies the learning rate by `factor` (exponential decay schedule;
  // the paper decays 0.1% per epoch).
  virtual void DecayLearningRate(double factor) = 0;
  virtual double learning_rate() const = 0;

 protected:
  std::vector<VarPtr> params_;
};

// L2 norm over every parameter's accumulated gradient (empty grads count
// as zero). The exact accumulation AdamOptimizer's clip-norm uses, exposed
// so observability sinks report the same number the update saw.
double GlobalGradNorm(const std::vector<VarPtr>& params);

// Adam (Kingma & Ba) with optional gradient clipping by global norm.
class AdamOptimizer : public Optimizer {
 public:
  struct Options {
    double learning_rate = 1e-4;  // Paper: initial LR 0.0001.
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double clip_norm = 0.0;  // 0 disables clipping.
  };

  AdamOptimizer(std::vector<VarPtr> params, const Options& options);

  void Step() override;
  void DecayLearningRate(double factor) override { lr_ *= factor; }
  double learning_rate() const override { return lr_; }

 private:
  Options options_;
  double lr_;
  int64_t step_count_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

// Plain SGD (used by the baselines' ablation and tests).
class SgdOptimizer : public Optimizer {
 public:
  SgdOptimizer(std::vector<VarPtr> params, double learning_rate);

  void Step() override;
  void DecayLearningRate(double factor) override { lr_ *= factor; }
  double learning_rate() const override { return lr_; }

 private:
  double lr_;
};

}  // namespace uv::ag

#endif  // UV_AUTOGRAD_OPTIMIZER_H_
