#ifndef UV_AUTOGRAD_OPS_H_
#define UV_AUTOGRAD_OPS_H_

#include <memory>
#include <vector>

#include "autograd/variable.h"
#include "tensor/kernels/kernel_dispatch.h"

namespace uv::ag {

// ---------------------------------------------------------------------------
// Dense ops (ops_dense.cc)
// ---------------------------------------------------------------------------

// C = A * B.
VarPtr MatMul(const VarPtr& a, const VarPtr& b);

// Fused dense layer: act(x * w + b) in one kernel pass — the bias row and
// activation run inside the GEMM output tiles (kern::GemmBiasAct) instead
// of as separate full-matrix ops. b is (1 x out_dim). leaky_slope is only
// read for kLeakyRelu and must be > 0 (the backward recovers the
// activation derivative from the output's sign).
VarPtr DenseBiasAct(const VarPtr& x, const VarPtr& w, const VarPtr& b,
                    kern::Activation act, float leaky_slope = 0.0f);

// Elementwise (same shape).
VarPtr Add(const VarPtr& a, const VarPtr& b);
VarPtr Sub(const VarPtr& a, const VarPtr& b);
VarPtr Mul(const VarPtr& a, const VarPtr& b);

// out = s * a.
VarPtr ScalarMul(const VarPtr& a, float s);

// Adds a (1 x d) bias row to every row of x (N x d).
VarPtr AddRowBroadcast(const VarPtr& x, const VarPtr& bias);

// Scales row r of x (N x d) by scale(r, 0) where scale is (N x 1).
VarPtr MulColBroadcast(const VarPtr& x, const VarPtr& scale);

// Elementwise product of every row of x (N x d) with a row vector (1 x d).
VarPtr MulRowVector(const VarPtr& x, const VarPtr& v);

// Matrix transpose.
VarPtr Transpose(const VarPtr& a);

// Horizontal concatenation [a | b].
VarPtr ConcatCols(const VarPtr& a, const VarPtr& b);

// Vertical concatenation [a ; b] (same column count).
VarPtr ConcatRows(const VarPtr& a, const VarPtr& b);

// Column slice [col_begin, col_end).
VarPtr SliceCols(const VarPtr& a, int col_begin, int col_end);

// Row-wise softmax(x / temperature).
VarPtr RowSoftmax(const VarPtr& a, float temperature);

// Activations.
VarPtr Relu(const VarPtr& a);
VarPtr LeakyRelu(const VarPtr& a, float negative_slope);
VarPtr Sigmoid(const VarPtr& a);
VarPtr Tanh(const VarPtr& a);

// Reductions to a 1x1 scalar node.
VarPtr SumAll(const VarPtr& a);
VarPtr MeanAll(const VarPtr& a);

// ---------------------------------------------------------------------------
// Graph message-passing ops (ops_graph.cc)
//
// Edges are stored grouped by destination: `offsets` has size N+1 and edge e
// with offsets[i] <= e < offsets[i+1] points *into* node i. This matches the
// CSR layout produced by uv::graph::CsrGraph.
// ---------------------------------------------------------------------------

// out[e] = x[indices[e]] (row gather); backward scatter-adds.
VarPtr GatherRows(const VarPtr& x,
                  const std::shared_ptr<const std::vector<int>>& indices);

// Softmax over each destination segment of per-edge scores (E x 1).
VarPtr SegmentSoftmax(const VarPtr& scores,
                      const std::shared_ptr<const std::vector<int>>& offsets);

// out[i] = sum over edges e of segment i of alpha(e) * feats[e]; alpha is
// (E x 1), feats is (E x d), result is (N x d) with N = offsets->size()-1.
VarPtr SegmentWeightedSum(
    const VarPtr& alpha, const VarPtr& feats,
    const std::shared_ptr<const std::vector<int>>& offsets);

// out[k] = sum of rows r of x with seg_ids[r] == k; rows with seg id -1 are
// dropped. Result is (num_segments x d). Used for the binarized
// regions->clusters collection (paper eq. 10).
VarPtr SegmentSumByIds(const VarPtr& x,
                       const std::shared_ptr<const std::vector<int>>& seg_ids,
                       int num_segments);

// ---------------------------------------------------------------------------
// Convolution ops (ops_conv.cc). Images are stored one per row, flattened in
// CHW order; shapes are passed explicitly.
// ---------------------------------------------------------------------------

struct Conv2dSpec {
  int in_channels = 0;
  int in_h = 0;
  int in_w = 0;
  int out_channels = 0;
  int kernel = 0;
  int stride = 1;
  int pad = 0;

  int out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  int out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
};

// x: (N x in_c*in_h*in_w), w: (out_c x in_c*k*k), b: (1 x out_c).
// Result: (N x out_c*out_h*out_w).
VarPtr Conv2d(const VarPtr& x, const VarPtr& w, const VarPtr& b,
              const Conv2dSpec& spec);

// 2x2/stride max pooling over (channels x h x w) rows.
VarPtr MaxPool2d(const VarPtr& x, int channels, int h, int w, int kernel,
                 int stride);

// Per-channel global average pooling: (N x c*h*w) -> (N x c).
VarPtr GlobalAvgPool(const VarPtr& x, int channels, int h, int w);

// ---------------------------------------------------------------------------
// Losses (ops_loss.cc)
// ---------------------------------------------------------------------------

// Mean binary cross entropy with logits over rows. labels is a constant
// (N x 1) of {0,1}; optional per-sample weights (N x 1, pass nullptr for
// uniform). Numerically stable log-sum-exp formulation.
VarPtr BceWithLogits(const VarPtr& logits, const Tensor& labels,
                     const Tensor* sample_weights);

// PU rank loss (paper eq. 18): sum over (i in positive, j in unlabeled) of
// (1 - (s_i - s_j))^2 on scores (K x 1), normalized by the pair count.
VarPtr PuRankLoss(const VarPtr& scores, const std::vector<int>& positive,
                  const std::vector<int>& unlabeled);

}  // namespace uv::ag

#endif  // UV_AUTOGRAD_OPS_H_
