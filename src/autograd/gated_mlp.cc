#include "autograd/gated_mlp.h"

#include <cmath>

#include "tensor/forward_ops.h"
#include "util/check.h"

namespace uv::ag {

int GatedMlpFilterSize(int d_in, int d_hidden) {
  return uv::GatedMlpFilterSize(d_in, d_hidden);
}

VarPtr GatedMlp(const VarPtr& x, const VarPtr& filter, const VarPtr& w1,
                const VarPtr& b1, const VarPtr& w2, const VarPtr& b2) {
  const int d_in = x->cols();
  const int d_hidden = w1->cols();

  // Filter row offsets for each parameter block.
  const int off_w1 = 0;
  const int off_b1 = d_in * d_hidden;
  const int off_w2 = off_b1 + d_hidden;
  const int off_b2 = off_w2 + d_hidden;

  // Shared forward (tensor/forward_ops.cc) validates every shape and caches
  // the hidden activations for the backward pass.
  Tensor out;
  Tensor hidden;
  uv::GatedMlpForward(x->value, filter->value, w1->value, b1->value,
                      w2->value, b2->value, &out, &hidden);

  VarPtr xv = x, fv = filter, w1v = w1, b1v = b1, w2v = w2, b2v = b2;
  return MakeOp(
      std::move(out), {x, filter, w1, b1, w2, b2},
      [xv, fv, w1v, b1v, w2v, b2v, hidden = std::move(hidden), d_in, d_hidden,
       off_w1, off_b1, off_w2, off_b2](Variable* self) {
        const int n = xv->rows();
        Tensor* gx = xv->requires_grad ? &xv->EnsureGrad() : nullptr;
        Tensor* gf = fv->requires_grad ? &fv->EnsureGrad() : nullptr;
        Tensor* gw1 = w1v->requires_grad ? &w1v->EnsureGrad() : nullptr;
        Tensor* gb1 = b1v->requires_grad ? &b1v->EnsureGrad() : nullptr;
        Tensor* gw2 = w2v->requires_grad ? &w2v->EnsureGrad() : nullptr;
        Tensor* gb2 = b2v->requires_grad ? &b2v->EnsureGrad() : nullptr;
        std::vector<float> dz(d_hidden);
        for (int i = 0; i < n; ++i) {
          const float d = self->grad.at(i, 0);
          if (d == 0.0f) continue;
          const float* xi = xv->value.row(i);
          const float* fi = fv->value.row(i);
          const float* hi = hidden.row(i);
          float* gfi = gf ? gf->row(i) : nullptr;

          // Output layer.
          if (gb2 != nullptr) gb2->at(0, 0) += d * fi[off_b2];
          if (gfi != nullptr) gfi[off_b2] += d * b2v->value.at(0, 0);
          for (int c = 0; c < d_hidden; ++c) {
            const float w2c = w2v->value.at(c, 0);
            const float f2c = fi[off_w2 + c];
            if (gw2 != nullptr) gw2->at(c, 0) += d * hi[c] * f2c;
            if (gfi != nullptr) gfi[off_w2 + c] += d * hi[c] * w2c;
            // relu': hidden stores relu(z), positive iff z > 0.
            const float da1 = d * w2c * f2c;
            dz[c] = hi[c] > 0.0f ? da1 : 0.0f;
          }

          // Hidden layer.
          for (int c = 0; c < d_hidden; ++c) {
            const float dzc = dz[c];
            if (dzc == 0.0f) continue;
            if (gb1 != nullptr) gb1->at(0, c) += dzc * fi[off_b1 + c];
            if (gfi != nullptr) gfi[off_b1 + c] += dzc * b1v->value.at(0, c);
          }
          for (int r = 0; r < d_in; ++r) {
            const float xr = xi[r];
            float dx_acc = 0.0f;
            const float* w1row = w1v->value.row(r);
            const float* firow = fi + off_w1 + r * d_hidden;
            float* gw1row = gw1 ? gw1->row(r) : nullptr;
            float* gfirow = gfi ? gfi + off_w1 + r * d_hidden : nullptr;
            for (int c = 0; c < d_hidden; ++c) {
              const float dzc = dz[c];
              if (dzc == 0.0f) continue;
              if (gw1row != nullptr) gw1row[c] += dzc * xr * firow[c];
              if (gfirow != nullptr) gfirow[c] += dzc * xr * w1row[c];
              dx_acc += dzc * w1row[c] * firow[c];
            }
            if (gx != nullptr) gx->row(i)[r] += dx_acc;
          }
        }
      },
      "gated_mlp");
}

}  // namespace uv::ag
