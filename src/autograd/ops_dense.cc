#include <algorithm>
#include <cmath>
#include <utility>

#include "autograd/ops.h"
#include "tensor/forward_ops.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace uv::ag {

VarPtr MatMul(const VarPtr& a, const VarPtr& b) {
  UV_CHECK_EQ(a->cols(), b->rows());
  Tensor out = uv::MatMul(a->value, b->value);
  VarPtr av = a, bv = b;
  return MakeOp(
      std::move(out), {a, b},
      [av, bv](Variable* self) {
        // dA = dC * B^T ; dB = A^T * dC.
        if (av->requires_grad) {
          Tensor& ga = av->EnsureGrad();
          Gemm(false, true, 1.0f, self->grad, bv->value, 1.0f, &ga);
        }
        if (bv->requires_grad) {
          Tensor& gb = bv->EnsureGrad();
          Gemm(true, false, 1.0f, av->value, self->grad, 1.0f, &gb);
        }
      },
      "matmul");
}

VarPtr Add(const VarPtr& a, const VarPtr& b) {
  Tensor out = uv::Add(a->value, b->value);
  VarPtr av = a, bv = b;
  return MakeOp(
      std::move(out), {a, b},
      [av, bv](Variable* self) {
        if (av->requires_grad) av->AccumGrad(self->grad);
        if (bv->requires_grad) bv->AccumGrad(self->grad);
      },
      "add");
}

VarPtr Sub(const VarPtr& a, const VarPtr& b) {
  Tensor out = uv::Sub(a->value, b->value);
  VarPtr av = a, bv = b;
  return MakeOp(
      std::move(out), {a, b},
      [av, bv](Variable* self) {
        if (av->requires_grad) av->AccumGrad(self->grad);
        if (bv->requires_grad) {
          Tensor& gb = bv->EnsureGrad();
          Axpy(-1.0f, self->grad, &gb);
        }
      },
      "sub");
}

VarPtr Mul(const VarPtr& a, const VarPtr& b) {
  Tensor out = uv::Mul(a->value, b->value);
  VarPtr av = a, bv = b;
  return MakeOp(
      std::move(out), {a, b},
      [av, bv](Variable* self) {
        if (av->requires_grad) av->AccumGrad(uv::Mul(self->grad, bv->value));
        if (bv->requires_grad) bv->AccumGrad(uv::Mul(self->grad, av->value));
      },
      "mul");
}

VarPtr ScalarMul(const VarPtr& a, float s) {
  Tensor out = uv::Scale(a->value, s);
  VarPtr av = a;
  return MakeOp(
      std::move(out), {a},
      [av, s](Variable* self) {
        if (av->requires_grad) av->AccumGrad(uv::Scale(self->grad, s));
      },
      "scalar_mul");
}

VarPtr DenseBiasAct(const VarPtr& x, const VarPtr& w, const VarPtr& b,
                    kern::Activation act, float leaky_slope) {
  UV_CHECK_EQ(x->cols(), w->rows());
  UV_CHECK_EQ(b->rows(), 1);
  UV_CHECK_EQ(b->cols(), w->cols());
  // One fused pass: GEMM accumulates x*W, then the bias row and the
  // activation are applied inside the still-hot output tiles instead of
  // as two more full-matrix sweeps (MatMul + AddRowBroadcast + Pointwise).
  Tensor out = Tensor::Uninit(x->rows(), w->cols());
  GemmBiasAct(false, false, 1.0f, x->value, w->value, 0.0f, &out,
              &b->value, act, leaky_slope);
  VarPtr xv = x, wv = w, bv = b;
  return MakeOp(
      std::move(out), {x, w, b},
      [xv, wv, bv, act, leaky_slope](Variable* self) {
        // The activation derivative is recoverable from the output alone:
        // relu/leaky-relu preserve the sign of the pre-activation (for
        // slope > 0), sigmoid' = y*(1-y). So the fused op never has to
        // save the pre-activation matrix.
        const Tensor* gz = &self->grad;
        Tensor gz_local;
        if (act != kern::Activation::kNone) {
          gz_local = Tensor::Uninit(self->grad.rows(), self->grad.cols());
          const float* y = self->value.data();
          const float* g = self->grad.data();
          float* o = gz_local.data();
          switch (act) {
            case kern::Activation::kRelu:
              for (int64_t i = 0; i < gz_local.size(); ++i) {
                o[i] = y[i] > 0.0f ? g[i] : 0.0f;
              }
              break;
            case kern::Activation::kLeakyRelu:
              for (int64_t i = 0; i < gz_local.size(); ++i) {
                o[i] = y[i] > 0.0f ? g[i] : leaky_slope * g[i];
              }
              break;
            case kern::Activation::kSigmoid:
              for (int64_t i = 0; i < gz_local.size(); ++i) {
                o[i] = g[i] * y[i] * (1.0f - y[i]);
              }
              break;
            case kern::Activation::kNone:
              break;
          }
          gz = &gz_local;
        }
        if (xv->requires_grad) {
          Tensor& gx = xv->EnsureGrad();
          Gemm(false, true, 1.0f, *gz, wv->value, 1.0f, &gx);
        }
        if (wv->requires_grad) {
          Tensor& gw = wv->EnsureGrad();
          Gemm(true, false, 1.0f, xv->value, *gz, 1.0f, &gw);
        }
        if (bv->requires_grad) {
          Tensor& gb = bv->EnsureGrad();
          for (int r = 0; r < gz->rows(); ++r) {
            const float* g = gz->row(r);
            float* gbd = gb.data();
            for (int c = 0; c < gz->cols(); ++c) gbd[c] += g[c];
          }
        }
      },
      "dense_bias_act");
}

VarPtr AddRowBroadcast(const VarPtr& x, const VarPtr& bias) {
  UV_CHECK_EQ(bias->rows(), 1);
  UV_CHECK_EQ(bias->cols(), x->cols());
  Tensor out = x->value;
  AddRowVectorInPlace(bias->value, &out);
  VarPtr xv = x, bv = bias;
  return MakeOp(
      std::move(out), {x, bias},
      [xv, bv](Variable* self) {
        if (xv->requires_grad) xv->AccumGrad(self->grad);
        if (bv->requires_grad) {
          Tensor& gb = bv->EnsureGrad();
          for (int r = 0; r < self->grad.rows(); ++r) {
            const float* g = self->grad.row(r);
            for (int c = 0; c < self->grad.cols(); ++c) gb.at(0, c) += g[c];
          }
        }
      },
      "add_row_broadcast");
}

VarPtr MulColBroadcast(const VarPtr& x, const VarPtr& scale) {
  Tensor out = x->value;
  MulColBroadcastInPlace(scale->value, &out);
  VarPtr xv = x, sv = scale;
  return MakeOp(
      std::move(out), {x, scale},
      [xv, sv](Variable* self) {
        if (xv->requires_grad) {
          Tensor gx = self->grad;
          for (int r = 0; r < gx.rows(); ++r) {
            const float s = sv->value.at(r, 0);
            float* row = gx.row(r);
            for (int c = 0; c < gx.cols(); ++c) row[c] *= s;
          }
          xv->AccumGrad(std::move(gx));
        }
        if (sv->requires_grad) {
          Tensor& gs = sv->EnsureGrad();
          for (int r = 0; r < self->grad.rows(); ++r) {
            const float* g = self->grad.row(r);
            const float* xr = xv->value.row(r);
            float acc = 0.0f;
            for (int c = 0; c < self->grad.cols(); ++c) acc += g[c] * xr[c];
            gs.at(r, 0) += acc;
          }
        }
      },
      "mul_col_broadcast");
}

VarPtr MulRowVector(const VarPtr& x, const VarPtr& v) {
  Tensor out = x->value;
  MulRowVectorInPlace(v->value, &out);
  VarPtr xv = x, vv = v;
  return MakeOp(
      std::move(out), {x, v},
      [xv, vv](Variable* self) {
        if (xv->requires_grad) {
          Tensor gx = self->grad;
          const float* vd = vv->value.data();
          for (int r = 0; r < gx.rows(); ++r) {
            float* row = gx.row(r);
            for (int c = 0; c < gx.cols(); ++c) row[c] *= vd[c];
          }
          xv->AccumGrad(std::move(gx));
        }
        if (vv->requires_grad) {
          Tensor& gv = vv->EnsureGrad();
          for (int r = 0; r < self->grad.rows(); ++r) {
            const float* g = self->grad.row(r);
            const float* xr = xv->value.row(r);
            for (int c = 0; c < self->grad.cols(); ++c) {
              gv.at(0, c) += g[c] * xr[c];
            }
          }
        }
      },
      "mul_row_vector");
}

VarPtr Transpose(const VarPtr& a) {
  Tensor out = uv::Transpose(a->value);
  VarPtr av = a;
  return MakeOp(
      std::move(out), {a},
      [av](Variable* self) {
        if (av->requires_grad) av->AccumGrad(uv::Transpose(self->grad));
      },
      "transpose");
}

VarPtr ConcatCols(const VarPtr& a, const VarPtr& b) {
  Tensor out = uv::ConcatCols(a->value, b->value);
  VarPtr av = a, bv = b;
  const int ac = a->cols();
  const int bc = b->cols();
  return MakeOp(
      std::move(out), {a, b},
      [av, bv, ac, bc](Variable* self) {
        if (av->requires_grad) av->AccumGrad(uv::SliceCols(self->grad, 0, ac));
        if (bv->requires_grad) {
          bv->AccumGrad(uv::SliceCols(self->grad, ac, ac + bc));
        }
      },
      "concat_cols");
}

VarPtr ConcatRows(const VarPtr& a, const VarPtr& b) {
  UV_CHECK_EQ(a->cols(), b->cols());
  Tensor out = Tensor::Uninit(a->rows() + b->rows(), a->cols());
  for (int r = 0; r < a->rows(); ++r) {
    std::copy(a->value.row(r), a->value.row(r) + a->cols(), out.row(r));
  }
  for (int r = 0; r < b->rows(); ++r) {
    std::copy(b->value.row(r), b->value.row(r) + b->cols(),
              out.row(a->rows() + r));
  }
  VarPtr av = a, bv = b;
  const int ar = a->rows();
  return MakeOp(
      std::move(out), {a, b},
      [av, bv, ar](Variable* self) {
        if (av->requires_grad) {
          Tensor ga = Tensor::Uninit(ar, self->grad.cols());
          for (int r = 0; r < ar; ++r) {
            std::copy(self->grad.row(r), self->grad.row(r) + ga.cols(),
                      ga.row(r));
          }
          av->AccumGrad(std::move(ga));
        }
        if (bv->requires_grad) {
          Tensor gb =
              Tensor::Uninit(self->grad.rows() - ar, self->grad.cols());
          for (int r = 0; r < gb.rows(); ++r) {
            std::copy(self->grad.row(ar + r),
                      self->grad.row(ar + r) + gb.cols(), gb.row(r));
          }
          bv->AccumGrad(std::move(gb));
        }
      },
      "concat_rows");
}

VarPtr SliceCols(const VarPtr& a, int col_begin, int col_end) {
  Tensor out = uv::SliceCols(a->value, col_begin, col_end);
  VarPtr av = a;
  return MakeOp(
      std::move(out), {a},
      [av, col_begin](Variable* self) {
        if (!av->requires_grad) return;
        Tensor& ga = av->EnsureGrad();
        for (int r = 0; r < self->grad.rows(); ++r) {
          const float* g = self->grad.row(r);
          float* dst = ga.row(r) + col_begin;
          for (int c = 0; c < self->grad.cols(); ++c) dst[c] += g[c];
        }
      },
      "slice_cols");
}

VarPtr RowSoftmax(const VarPtr& a, float temperature) {
  Tensor out = uv::RowSoftmax(a->value, temperature);
  VarPtr av = a;
  // Capture the softmax output by value for the backward pass.
  Tensor soft = out;
  return MakeOp(
      std::move(out), {a},
      [av, soft = std::move(soft), temperature](Variable* self) {
        if (!av->requires_grad) return;
        Tensor ga = Tensor::Uninit(soft.rows(), soft.cols());
        for (int r = 0; r < soft.rows(); ++r) {
          const float* p = soft.row(r);
          const float* g = self->grad.row(r);
          float dot = 0.0f;
          for (int c = 0; c < soft.cols(); ++c) dot += p[c] * g[c];
          float* gr = ga.row(r);
          for (int c = 0; c < soft.cols(); ++c) {
            gr[c] = p[c] * (g[c] - dot) / temperature;
          }
        }
        av->AccumGrad(std::move(ga));
      },
      "row_softmax");
}

namespace {

// Shared implementation for pointwise activations: fwd maps x -> y, dfn maps
// (x, y) -> dy/dx.
template <typename Fwd, typename Dfn>
VarPtr Pointwise(const VarPtr& a, Fwd fwd, Dfn dfn, const char* name) {
  Tensor out = Tensor::Uninit(a->rows(), a->cols());
  const float* in = a->value.data();
  float* o = out.data();
  for (int64_t i = 0; i < out.size(); ++i) o[i] = fwd(in[i]);
  VarPtr av = a;
  Tensor saved = out;
  return MakeOp(
      std::move(out), {a},
      [av, saved = std::move(saved), dfn](Variable* self) {
        if (!av->requires_grad) return;
        Tensor ga = Tensor::Uninit(self->grad.rows(), self->grad.cols());
        const float* x = av->value.data();
        const float* y = saved.data();
        const float* g = self->grad.data();
        float* gd = ga.data();
        for (int64_t i = 0; i < ga.size(); ++i) gd[i] = g[i] * dfn(x[i], y[i]);
        av->AccumGrad(std::move(ga));
      },
      name);
}

}  // namespace

// The scalar forward formulas live in tensor/forward_ops.h so the grad-free
// inference engine evaluates the exact same expressions.
VarPtr Relu(const VarPtr& a) {
  return Pointwise(
      a, [](float x) { return ReluScalar(x); },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; }, "relu");
}

VarPtr LeakyRelu(const VarPtr& a, float negative_slope) {
  return Pointwise(
      a,
      [negative_slope](float x) { return LeakyReluScalar(x, negative_slope); },
      [negative_slope](float x, float) {
        return x > 0.0f ? 1.0f : negative_slope;
      },
      "leaky_relu");
}

VarPtr Sigmoid(const VarPtr& a) {
  return Pointwise(
      a, [](float x) { return SigmoidScalar(x); },
      [](float, float y) { return y * (1.0f - y); }, "sigmoid");
}

VarPtr Tanh(const VarPtr& a) {
  return Pointwise(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; }, "tanh");
}

VarPtr SumAll(const VarPtr& a) {
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(a->value.Sum());
  VarPtr av = a;
  return MakeOp(
      std::move(out), {a},
      [av](Variable* self) {
        if (!av->requires_grad) return;
        const float g = self->grad.at(0, 0);
        Tensor ga = Tensor::Uninit(av->rows(), av->cols());
        ga.Fill(g);
        av->AccumGrad(std::move(ga));
      },
      "sum_all");
}

VarPtr MeanAll(const VarPtr& a) {
  const int64_t n = a->value.size();
  UV_CHECK_GT(n, 0);
  return ScalarMul(SumAll(a), 1.0f / static_cast<float>(n));
}

}  // namespace uv::ag
