// Counts heap allocations per CMSF training step with the BufferPool
// enabled vs disabled (UV_POOL=0 semantics), by interposing the global
// operator new/delete in this binary. The pooled hot path is required to
// cut allocations per step by at least 10x; the process exits non-zero if
// it does not, so the check can gate CI.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench_common.h"
#include "eval/splits.h"
#include "util/buffer_pool.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_alloc_bytes{0};
std::atomic<uint64_t> g_size_hist[40];

void CountAlloc(std::size_t n) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
    int b = 0;
    while ((std::size_t{1} << b) < n && b < 39) ++b;
    g_size_hist[b].fetch_add(1, std::memory_order_relaxed);
  }
}

void* AllocOrThrow(std::size_t n) {
  CountAlloc(n);
  if (void* p = std::malloc(n > 0 ? n : 1)) return p;
  throw std::bad_alloc();
}

void* AllocAligned(std::size_t n, std::size_t align) {
  CountAlloc(n);
  void* p = nullptr;
  if (posix_memalign(&p, align, n > 0 ? n : align) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return AllocOrThrow(n); }
void* operator new[](std::size_t n) { return AllocOrThrow(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return AllocAligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return AllocAligned(n, static_cast<std::size_t>(a));
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  CountAlloc(n);
  return std::malloc(n > 0 ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  CountAlloc(n);
  return std::malloc(n > 0 ? n : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

int main(int argc, char** argv) {
  auto bench = uv::bench::BenchConfig::FromArgs(argc, argv);
  bench.epochs = std::min(bench.epochs, 10);
  uv::bench::PrintBenchHeader(
      "Micro: heap allocations per CMSF training step", bench);
  auto report = uv::bench::MakeReport("micro_alloc", bench);

  auto urg = uv::bench::BuildCityUrg("Fuzhou", bench);
  uv::Rng rng(bench.seed);
  auto folds = uv::eval::BlockKFold(urg.grid, urg.LabeledIds(), 3, 10, &rng);
  std::vector<int> train_labels(folds[0].train_ids.size());
  for (size_t i = 0; i < train_labels.size(); ++i) {
    train_labels[i] = urg.labels[folds[0].train_ids[i]];
  }
  auto factory = uv::bench::MakeFactory("CMSF", "Fuzhou", bench);

  // Trains twice per mode: the first pass warms the pool and the
  // per-thread kernel workspaces, the second is the measured steady state.
  auto measure = [&](bool pool_on) {
    uv::BufferPool::SetEnabled(pool_on);
    {
      auto warmup = factory(bench.seed);
      warmup->Train(urg, folds[0].train_ids, train_labels);
    }
    uv::BufferPool::ResetStats();
    g_allocs.store(0);
    g_alloc_bytes.store(0);
    for (auto& h : g_size_hist) h.store(0);
    g_counting.store(true);
    {
      auto detector = factory(bench.seed);
      detector->Train(urg, folds[0].train_ids, train_labels);
    }
    g_counting.store(false);
    struct Result {
      double allocs_per_step;
      double bytes_per_step;
      uv::MemStatsSnapshot pool;
    } r;
    r.allocs_per_step =
        static_cast<double>(g_allocs.load()) / bench.epochs;
    r.bytes_per_step =
        static_cast<double>(g_alloc_bytes.load()) / bench.epochs;
    r.pool = uv::BufferPool::Stats();
    return r;
  };

  const auto off = measure(false);
  const auto on = measure(true);
  uv::BufferPool::SetEnabled(uv::BufferPool::Enabled());

  const double ratio =
      on.allocs_per_step > 0.0 ? off.allocs_per_step / on.allocs_per_step
                               : 0.0;
  struct Mode {
    const char* name;
    const decltype(off)* r;
  };
  for (const Mode m : {Mode{"pool_off", &off}, Mode{"pool_on", &on}}) {
    const auto& r = *m.r;
    auto& entry = report.Bench(m.name);
    entry.AddMetric("allocs_per_step", r.allocs_per_step,
                    uv::obs::Direction::kLowerIsBetter);
    entry.AddMetric("bytes_per_step", r.bytes_per_step,
                    uv::obs::Direction::kLowerIsBetter);
    entry.AddMetric("pool_acquires", static_cast<double>(r.pool.acquires));
    entry.AddMetric("pool_hits", static_cast<double>(r.pool.hits));
    entry.AddMetric("pool_heap_allocs",
                    static_cast<double>(r.pool.heap_allocs));
  }
  report.Bench("pool_on").AddMetric("reduction", ratio,
                                    uv::obs::Direction::kHigherIsBetter);
  std::printf("pool off: %.1f heap allocs/step (%.1f KB/step)\n",
              off.allocs_per_step, off.bytes_per_step / 1024.0);
  std::printf("pool on : %.1f heap allocs/step (%.1f KB/step)\n",
              on.allocs_per_step, on.bytes_per_step / 1024.0);
  if (std::getenv("UV_ALLOC_HIST") != nullptr) {
    std::printf("pool-on size histogram (bucket <= 2^b bytes: count):\n");
    for (int b = 0; b < 40; ++b) {
      const uint64_t c = g_size_hist[b].load();
      if (c > 0) {
        std::printf("  2^%-2d: %llu\n", b,
                    static_cast<unsigned long long>(c));
      }
    }
  }
  std::printf("reduction: %.1fx (target >= 10x)\n", ratio);
  std::printf(
      "pool-on acquire hit rate: %llu/%llu (%.1f%%), heap allocs %llu\n",
      static_cast<unsigned long long>(on.pool.hits),
      static_cast<unsigned long long>(on.pool.acquires),
      on.pool.acquires > 0 ? 100.0 * static_cast<double>(on.pool.hits) /
                                 static_cast<double>(on.pool.acquires)
                           : 0.0,
      static_cast<unsigned long long>(on.pool.heap_allocs));

  uv::bench::WriteLedger(
      report, uv::bench::LedgerPath("BENCH_micro_alloc.json", argc, argv));
  if (ratio < 10.0) {
    std::fprintf(stderr,
                 "FAIL: pooled hot path must cut heap allocations per step "
                 "by >= 10x (got %.1fx)\n",
                 ratio);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
