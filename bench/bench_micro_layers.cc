// Microbenchmarks for the model layers (MAGA, GSCM, MS-Gate) and URG
// construction, measuring the per-epoch building blocks of CMSF.

#include <benchmark/benchmark.h>

#include "bench_gbench.h"
#include "core/cmsf_model.h"
#include "tensor/tensor_ops.h"
#include "nn/gscm.h"
#include "nn/maga.h"
#include "nn/ms_gate.h"
#include "synth/city.h"
#include "urg/urban_region_graph.h"

namespace {

uv::Tensor RandomTensor(int r, int c, uint64_t seed) {
  uv::Rng rng(seed);
  uv::Tensor t(r, c);
  t.RandomNormal(&rng, 1.0f);
  return t;
}

uv::nn::GraphContext GridContext(int side) {
  uv::graph::GridSpec grid{side, side, 128.0};
  auto csr = uv::graph::CsrGraph::FromEdges(
      grid.num_regions(), uv::graph::BuildSpatialProximityEdges(grid), false,
      true);
  return uv::nn::GraphContext::FromCsr(csr);
}

void BM_MagaLayerForward(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const int n = side * side;
  auto ctx = GridContext(side);
  uv::Rng rng(1);
  uv::nn::MagaLayer layer(64, 128, 64, 2, uv::nn::AggKind::kAttention, &rng);
  auto p = uv::ag::MakeConst(RandomTensor(n, 64, 2));
  auto i = uv::ag::MakeConst(RandomTensor(n, 128, 3));
  for (auto _ : state) {
    auto out = layer.Forward(p, i, ctx);
    benchmark::DoNotOptimize(out.p->value.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MagaLayerForward)->Arg(32)->Arg(64);

void BM_GscmForward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  uv::Rng rng(4);
  uv::nn::Gscm::Options options;
  options.in_dim = 128;
  options.num_clusters = 50;
  uv::nn::Gscm gscm(options, &rng);
  auto x = uv::ag::MakeConst(RandomTensor(n, 128, 5));
  for (auto _ : state) {
    auto out = gscm.Forward(x);
    benchmark::DoNotOptimize(out.region_repr->value.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GscmForward)->Arg(1024)->Arg(4096);

void BM_MsGateForward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  uv::Rng rng(6);
  uv::nn::MsGate::Options options;
  options.num_clusters = 50;
  options.cluster_repr_dim = 128;
  options.context_dim = 16;
  options.classifier_in = 128;
  options.classifier_hidden = 32;
  uv::nn::MsGate gate(options, &rng);
  uv::nn::Mlp master(128, 32, 1, &rng);
  auto x = uv::ag::MakeConst(RandomTensor(n, 128, 7));
  auto b = uv::ag::MakeConst(::uv::RowSoftmax(RandomTensor(n, 50, 8), 0.1f));
  auto h = uv::ag::MakeConst(RandomTensor(50, 128, 9));
  for (auto _ : state) {
    auto inclusion = gate.EstimateInclusion(h);
    auto logits = gate.Forward(x, b, inclusion, master);
    benchmark::DoNotOptimize(logits->value.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MsGateForward)->Arg(512)->Arg(2048);

void BM_UrgConstruction(benchmark::State& state) {
  auto config = uv::synth::ShenzhenLike(0.005, 11);
  config.generate_images = false;
  auto city = uv::synth::GenerateCity(config);
  for (auto _ : state) {
    uv::urg::UrgOptions options;
    auto urg = uv::urg::BuildUrg(city, options);
    benchmark::DoNotOptimize(urg.num_edges);
  }
}
BENCHMARK(BM_UrgConstruction);

void BM_CityGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto config = uv::synth::ShenzhenLike(0.005, state.iterations());
    config.generate_images = false;
    auto city = uv::synth::GenerateCity(config);
    benchmark::DoNotOptimize(city.pois.size());
  }
}
BENCHMARK(BM_CityGeneration);

}  // namespace

int main(int argc, char** argv) {
  return uv::bench::GBenchLedgerMain("micro_layers", "BENCH_micro_layers.json",
                                     argc, argv);
}
