// Unified benchmark driver: runs the micro kernel suite (and optionally a
// small end-to-end eval leg) under the standard measurement protocol —
// warmup + N timed repeats with obs::ResetAll() isolation between repeats —
// and writes one canonical perf ledger (default BENCH_core.json) through
// obs::Report. The committed BENCH_core.json at the repo root is the
// regression baseline: CI re-runs `bench_suite --micro` and gates the fresh
// ledger with tools/bench_diff.py.
//
//   bench_suite --micro [--eval] [--repeats N] [--warmup N] [--out FILE]
//
// UV_BENCH_REPEATS / UV_BENCH_WARMUP / UV_BENCH_OUT are the env fallbacks;
// UV_BENCH_SCALE etc. shape the --eval leg (see bench_common.h).

#include <cstdio>
#include <cstring>
#include <memory>

#include "autograd/ops.h"
#include "bench_common.h"
#include "graph/csr_graph.h"
#include "graph/grid.h"
#include "nn/graph_context.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace {

uv::Tensor RandomTensor(int r, int c, uint64_t seed) {
  uv::Rng rng(seed);
  uv::Tensor t(r, c);
  t.RandomNormal(&rng, 1.0f);
  return t;
}

uv::nn::GraphContext GridContext(int side) {
  uv::graph::GridSpec grid{side, side, 128.0};
  auto csr = uv::graph::CsrGraph::FromEdges(
      grid.num_regions(), uv::graph::BuildSpatialProximityEdges(grid), false,
      true);
  return uv::nn::GraphContext::FromCsr(csr);
}

// The micro suite: one entry per hot kernel family. Sizes are chosen so a
// repeat lands in the 10-100 ms band on one core — long enough to swamp
// timer noise, short enough that CI's warmup + 5 repeats x 9 benchmarks
// stays under a minute.
void RunMicroSuite(uv::obs::Report* report) {
  {
    const uv::Tensor a = RandomTensor(256, 256, 1);
    const uv::Tensor b = RandomTensor(256, 256, 2);
    uv::Tensor c(256, 256);
    report->RunTimed("gemm_nn_256", [&] {
      uv::Gemm(false, false, 1.0f, a, b, 0.0f, &c);
    });
    report->RunTimed("gemm_tn_256", [&] {
      uv::Gemm(true, false, 1.0f, a, b, 0.0f, &c);
    });
    report->RunTimed("gemm_nt_256", [&] {
      uv::Gemm(false, true, 1.0f, a, b, 0.0f, &c);
    });
  }
  {
    // Vectorized elementwise: y += alpha * x over 1M floats.
    const uv::Tensor x = RandomTensor(1024, 1024, 19);
    uv::Tensor y = RandomTensor(1024, 1024, 20);
    report->RunTimed("axpy_1m", [&] {
      uv::Axpy(0.5f, x, &y);
    });
  }
  {
    // Fused dense + bias + ReLU epilogue (the Linear::Forward hot path).
    const uv::Tensor x = RandomTensor(512, 256, 21);
    const uv::Tensor w = RandomTensor(256, 128, 22);
    const uv::Tensor bias = RandomTensor(1, 128, 23);
    uv::Tensor out(512, 128);
    report->RunTimed("dense_bias_relu", [&] {
      uv::GemmBiasAct(false, false, 1.0f, x, w, 0.0f, &out, &bias,
                      uv::kern::Activation::kRelu);
    });
  }
  {
    const uv::Tensor a = RandomTensor(8192, 50, 3);
    report->RunTimed("row_softmax_8192x50", [&] {
      uv::Tensor s = uv::RowSoftmax(a, 0.1f);
    });
  }
  {
    // Attention message passing (the per-epoch inner loop of every GNN).
    auto ctx = GridContext(64);
    auto x = uv::ag::MakeConst(RandomTensor(64 * 64, 64, 4));
    auto w = uv::ag::MakeConst(RandomTensor(64, 32, 5));
    auto a_src = uv::ag::MakeConst(RandomTensor(32, 1, 6));
    auto a_dst = uv::ag::MakeConst(RandomTensor(32, 1, 7));
    report->RunTimed("attention_pass_grid64", [&] {
      auto h = uv::ag::MatMul(x, w);
      auto scores = uv::ag::LeakyRelu(
          uv::ag::Add(
              uv::ag::GatherRows(uv::ag::MatMul(h, a_dst), ctx.dst_ids),
              uv::ag::GatherRows(uv::ag::MatMul(h, a_src), ctx.src_ids)),
          0.2f);
      auto alpha = uv::ag::SegmentSoftmax(scores, ctx.offsets);
      auto out = uv::ag::SegmentWeightedSum(
          alpha, uv::ag::GatherRows(h, ctx.src_ids), ctx.offsets);
      (void)out->value.data();
    });
  }
  {
    // GSCM regions->clusters->regions round trip.
    const int n = 4096, k = 50;
    auto x = uv::ag::MakeConst(RandomTensor(n, 64, 8));
    auto wb = uv::ag::MakeConst(RandomTensor(64, k, 9));
    auto seg = std::make_shared<std::vector<int>>(n);
    uv::Rng rng(10);
    for (auto& s : *seg) s = rng.UniformInt(k);
    report->RunTimed("cluster_roundtrip_4096", [&] {
      auto soft = uv::ag::RowSoftmax(uv::ag::MatMul(x, wb), 0.1f);
      auto clusters = uv::ag::SegmentSumByIds(x, seg, k);
      auto back = uv::ag::MatMul(soft, clusters);
      (void)back->value.data();
    });
  }
  {
    // Conv2d forward + backward over an 8-image batch.
    const uv::ag::Conv2dSpec spec{3, 32, 32, 16, 3, 1, 1};
    const uv::Tensor x0 = RandomTensor(8, 3 * 32 * 32, 11);
    const uv::Tensor w0 = RandomTensor(16, 3 * 9, 12);
    const uv::Tensor b0 = RandomTensor(1, 16, 13);
    report->RunTimed("conv2d_fwd_bwd_b8", [&] {
      auto x = uv::ag::MakeParam(x0);
      auto w = uv::ag::MakeParam(w0);
      auto b = uv::ag::MakeParam(b0);
      auto y = uv::ag::Conv2d(x, w, b, spec);
      uv::ag::Backward(uv::ag::SumAll(uv::ag::Mul(y, y)));
    });
  }
  {
    // CSR segment softmax + weighted sum, forward and backward.
    const int num_segments = 20000;
    auto offsets = std::make_shared<std::vector<int>>();
    offsets->push_back(0);
    uv::Rng rng(14);
    for (int i = 0; i < num_segments; ++i) {
      offsets->push_back(offsets->back() + 4 + rng.UniformInt(8));
    }
    const uv::Tensor scores0 = RandomTensor(offsets->back(), 1, 15);
    const uv::Tensor feats0 = RandomTensor(offsets->back(), 64, 16);
    std::shared_ptr<const std::vector<int>> off = offsets;
    report->RunTimed("segment_fwd_bwd_20k", [&] {
      auto scores = uv::ag::MakeParam(scores0);
      auto feats = uv::ag::MakeParam(feats0);
      auto alpha = uv::ag::SegmentSoftmax(scores, off);
      auto y = uv::ag::SegmentWeightedSum(alpha, feats, off);
      uv::ag::Backward(uv::ag::SumAll(uv::ag::Mul(y, y)));
    });
  }
  {
    // Full reverse-mode pass over a graph model (allocation-heavy path:
    // exercises the graph arena and the buffer pool).
    auto ctx = GridContext(64);
    auto x = uv::ag::MakeConst(RandomTensor(64 * 64, 64, 17));
    report->RunTimed("backward_graph_grid64", [&] {
      auto w = uv::ag::MakeParam(RandomTensor(64, 32, 18));
      auto h = uv::ag::Relu(uv::ag::MatMul(x, w));
      auto gathered = uv::ag::GatherRows(h, ctx.src_ids);
      auto agg =
          uv::ag::SegmentWeightedSum(ctx.gcn_norm, gathered, ctx.offsets);
      auto loss = uv::ag::MeanAll(uv::ag::Mul(agg, agg));
      uv::ag::Backward(loss);
      (void)w->grad.data();
    });
  }
}

// Optional end-to-end leg: one small cross-validated GCN run, recorded via
// the same AppendRunStats path the table benches use.
void RunEvalSuite(uv::obs::Report* report, uv::bench::BenchConfig bench) {
  bench.epochs = std::min(bench.epochs, 20);
  bench.runs = 1;
  const std::string city = "Fuzhou";
  auto urg = uv::bench::BuildCityUrg(city, bench);
  const auto stats = uv::eval::RunCrossValidation(
      urg, uv::bench::MakeFactory("GCN", city, bench),
      uv::bench::MakeRunnerOptions(bench));
  uv::eval::AppendRunStats(report, "eval/cross_validation_gcn_fuzhou", stats);
}

}  // namespace

int main(int argc, char** argv) {
  bool micro = false, eval = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--micro") == 0) micro = true;
    if (std::strcmp(argv[i], "--eval") == 0) eval = true;
  }
  if (!micro && !eval) {
    std::fprintf(stderr,
                 "usage: bench_suite --micro [--eval] [--repeats N] "
                 "[--warmup N] [--out FILE]\n");
    return 2;
  }

  const auto bench = uv::bench::BenchConfig::FromArgs(argc, argv);
  auto report = uv::bench::MakeReport("core", bench);
  std::printf("=== bench_suite (warmup=%d, repeats=%d) ===\n", bench.warmup,
              bench.repeats);

  if (micro) RunMicroSuite(&report);
  if (eval) RunEvalSuite(&report, bench);

  const std::string path =
      uv::bench::LedgerPath("BENCH_core.json", argc, argv);
  uv::bench::WriteLedger(report, path);
  return 0;
}
