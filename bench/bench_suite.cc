// Unified benchmark driver: runs the micro kernel suite (and optionally a
// small end-to-end eval leg) under the standard measurement protocol —
// warmup + N timed repeats with obs::ResetAll() isolation between repeats —
// and writes one canonical perf ledger (default BENCH_core.json) through
// obs::Report. The committed BENCH_core.json at the repo root is the
// regression baseline: CI re-runs `bench_suite --micro` and gates the fresh
// ledger with tools/bench_diff.py.
//
//   bench_suite --micro [--eval] [--repeats N] [--warmup N] [--out FILE]
//
// UV_BENCH_REPEATS / UV_BENCH_WARMUP / UV_BENCH_OUT are the env fallbacks;
// UV_BENCH_SCALE etc. shape the --eval leg (see bench_common.h).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "autograd/ops.h"
#include "bench_common.h"
#include "core/cmsf_detector.h"
#include "core/cmsf_model.h"
#include "eval/splits.h"
#include "graph/csr_graph.h"
#include "graph/grid.h"
#include "infer/engine.h"
#include "infer/server.h"
#include "nn/graph_context.h"
#include "obs/quality.h"
#include "tensor/tensor_ops.h"
#include "urg/neighbor_sampler.h"
#include "util/buffer_pool.h"
#include "util/rng.h"

namespace {

uv::Tensor RandomTensor(int r, int c, uint64_t seed) {
  uv::Rng rng(seed);
  uv::Tensor t(r, c);
  t.RandomNormal(&rng, 1.0f);
  return t;
}

uv::nn::GraphContext GridContext(int side) {
  uv::graph::GridSpec grid{side, side, 128.0};
  auto csr = uv::graph::CsrGraph::FromEdges(
      grid.num_regions(), uv::graph::BuildSpatialProximityEdges(grid), false,
      true);
  return uv::nn::GraphContext::FromCsr(csr);
}

// The micro suite: one entry per hot kernel family. Sizes are chosen so a
// repeat lands in the 10-100 ms band on one core — long enough to swamp
// timer noise, short enough that CI's warmup + 5 repeats x 9 benchmarks
// stays under a minute.
void RunMicroSuite(uv::obs::Report* report) {
  {
    const uv::Tensor a = RandomTensor(256, 256, 1);
    const uv::Tensor b = RandomTensor(256, 256, 2);
    uv::Tensor c(256, 256);
    report->RunTimed("gemm_nn_256", [&] {
      uv::Gemm(false, false, 1.0f, a, b, 0.0f, &c);
    });
    report->RunTimed("gemm_tn_256", [&] {
      uv::Gemm(true, false, 1.0f, a, b, 0.0f, &c);
    });
    report->RunTimed("gemm_nt_256", [&] {
      uv::Gemm(false, true, 1.0f, a, b, 0.0f, &c);
    });
  }
  {
    // Vectorized elementwise: y += alpha * x over 1M floats.
    const uv::Tensor x = RandomTensor(1024, 1024, 19);
    uv::Tensor y = RandomTensor(1024, 1024, 20);
    report->RunTimed("axpy_1m", [&] {
      uv::Axpy(0.5f, x, &y);
    });
  }
  {
    // Fused dense + bias + ReLU epilogue (the Linear::Forward hot path).
    const uv::Tensor x = RandomTensor(512, 256, 21);
    const uv::Tensor w = RandomTensor(256, 128, 22);
    const uv::Tensor bias = RandomTensor(1, 128, 23);
    uv::Tensor out(512, 128);
    report->RunTimed("dense_bias_relu", [&] {
      uv::GemmBiasAct(false, false, 1.0f, x, w, 0.0f, &out, &bias,
                      uv::kern::Activation::kRelu);
    });
  }
  {
    const uv::Tensor a = RandomTensor(8192, 50, 3);
    report->RunTimed("row_softmax_8192x50", [&] {
      uv::Tensor s = uv::RowSoftmax(a, 0.1f);
    });
  }
  {
    // Attention message passing (the per-epoch inner loop of every GNN).
    auto ctx = GridContext(64);
    auto x = uv::ag::MakeConst(RandomTensor(64 * 64, 64, 4));
    auto w = uv::ag::MakeConst(RandomTensor(64, 32, 5));
    auto a_src = uv::ag::MakeConst(RandomTensor(32, 1, 6));
    auto a_dst = uv::ag::MakeConst(RandomTensor(32, 1, 7));
    report->RunTimed("attention_pass_grid64", [&] {
      auto h = uv::ag::MatMul(x, w);
      auto scores = uv::ag::LeakyRelu(
          uv::ag::Add(
              uv::ag::GatherRows(uv::ag::MatMul(h, a_dst), ctx.dst_ids),
              uv::ag::GatherRows(uv::ag::MatMul(h, a_src), ctx.src_ids)),
          0.2f);
      auto alpha = uv::ag::SegmentSoftmax(scores, ctx.offsets);
      auto out = uv::ag::SegmentWeightedSum(
          alpha, uv::ag::GatherRows(h, ctx.src_ids), ctx.offsets);
      (void)out->value.data();
    });
  }
  {
    // GSCM regions->clusters->regions round trip.
    const int n = 4096, k = 50;
    auto x = uv::ag::MakeConst(RandomTensor(n, 64, 8));
    auto wb = uv::ag::MakeConst(RandomTensor(64, k, 9));
    auto seg = std::make_shared<std::vector<int>>(n);
    uv::Rng rng(10);
    for (auto& s : *seg) s = rng.UniformInt(k);
    report->RunTimed("cluster_roundtrip_4096", [&] {
      auto soft = uv::ag::RowSoftmax(uv::ag::MatMul(x, wb), 0.1f);
      auto clusters = uv::ag::SegmentSumByIds(x, seg, k);
      auto back = uv::ag::MatMul(soft, clusters);
      (void)back->value.data();
    });
  }
  {
    // Conv2d forward + backward over an 8-image batch.
    const uv::ag::Conv2dSpec spec{3, 32, 32, 16, 3, 1, 1};
    const uv::Tensor x0 = RandomTensor(8, 3 * 32 * 32, 11);
    const uv::Tensor w0 = RandomTensor(16, 3 * 9, 12);
    const uv::Tensor b0 = RandomTensor(1, 16, 13);
    report->RunTimed("conv2d_fwd_bwd_b8", [&] {
      auto x = uv::ag::MakeParam(x0);
      auto w = uv::ag::MakeParam(w0);
      auto b = uv::ag::MakeParam(b0);
      auto y = uv::ag::Conv2d(x, w, b, spec);
      uv::ag::Backward(uv::ag::SumAll(uv::ag::Mul(y, y)));
    });
  }
  {
    // CSR segment softmax + weighted sum, forward and backward.
    const int num_segments = 20000;
    auto offsets = std::make_shared<std::vector<int>>();
    offsets->push_back(0);
    uv::Rng rng(14);
    for (int i = 0; i < num_segments; ++i) {
      offsets->push_back(offsets->back() + 4 + rng.UniformInt(8));
    }
    const uv::Tensor scores0 = RandomTensor(offsets->back(), 1, 15);
    const uv::Tensor feats0 = RandomTensor(offsets->back(), 64, 16);
    std::shared_ptr<const std::vector<int>> off = offsets;
    report->RunTimed("segment_fwd_bwd_20k", [&] {
      auto scores = uv::ag::MakeParam(scores0);
      auto feats = uv::ag::MakeParam(feats0);
      auto alpha = uv::ag::SegmentSoftmax(scores, off);
      auto y = uv::ag::SegmentWeightedSum(alpha, feats, off);
      uv::ag::Backward(uv::ag::SumAll(uv::ag::Mul(y, y)));
    });
  }
  {
    // Full reverse-mode pass over a graph model (allocation-heavy path:
    // exercises the graph arena and the buffer pool).
    auto ctx = GridContext(64);
    auto x = uv::ag::MakeConst(RandomTensor(64 * 64, 64, 17));
    report->RunTimed("backward_graph_grid64", [&] {
      auto w = uv::ag::MakeParam(RandomTensor(64, 32, 18));
      auto h = uv::ag::Relu(uv::ag::MatMul(x, w));
      auto gathered = uv::ag::GatherRows(h, ctx.src_ids);
      auto agg =
          uv::ag::SegmentWeightedSum(ctx.gcn_norm, gathered, ctx.offsets);
      auto loss = uv::ag::MeanAll(uv::ag::Mul(agg, agg));
      uv::ag::Backward(loss);
      (void)w->grad.data();
    });
  }
}

// Optional end-to-end leg: one small cross-validated GCN run, recorded via
// the same AppendRunStats path the table benches use.
void RunEvalSuite(uv::obs::Report* report, uv::bench::BenchConfig bench) {
  bench.epochs = std::min(bench.epochs, 20);
  bench.runs = 1;
  const std::string city = "Fuzhou";
  auto urg = uv::bench::BuildCityUrg(city, bench);
  const auto stats = uv::eval::RunCrossValidation(
      urg, uv::bench::MakeFactory("GCN", city, bench),
      uv::bench::MakeRunnerOptions(bench));
  uv::eval::AppendRunStats(report, "eval/cross_validation_gcn_fuzhou", stats);
}

// Paper-scale leg: builds one city-scale preset ("93k" / "175k" / "354k",
// generate_images = false) through the sharded URG + lazy feature store
// path and records the four gated entries of the city_scale.* family:
//   city_scale.urg_build_<tag>       regions_per_sec, peak pool bytes
//   city_scale.sampler_<tag>         subgraphs_per_sec
//   city_scale.train_step_cmsf_<tag> per-batch master step, peak pool bytes
//   city_scale.train_step_gcn_<tag>  per-batch GCN step, peak pool bytes
// Each train-step closure resets the pool high-water mark first, so
// mem.pool_peak_delta isolates the per-batch transient footprint — the
// number that must stay flat from 93k to 354k at fixed batch / fanout.
void RunCityScaleSuite(uv::obs::Report* report,
                       const uv::bench::BenchConfig& bench,
                       const std::string& tag) {
  uv::synth::CityConfig config;
  if (!uv::synth::CityScalePreset(tag, bench.seed, &config)) {
    std::fprintf(stderr, "unknown --city-scale tag '%s' (93k|175k|354k)\n",
                 tag.c_str());
    std::exit(2);
  }
  constexpr int kBatch = 256;
  constexpr int kFanout = 16;
  std::printf("--- city_scale %s: %d x %d = %d regions ---\n", tag.c_str(),
              config.height, config.width, config.num_regions());
  auto city = std::make_shared<const uv::synth::City>(
      uv::synth::GenerateCity(config));
  const int n = config.num_regions();

  uv::urg::UrbanRegionGraph urg;
  {
    uv::BufferPool::ResetPeak();
    auto& e = report->RunTimed("city_scale.urg_build_" + tag, [&] {
      urg = uv::urg::BuildShardedUrg(city, uv::urg::UrgOptions{},
                                     uv::urg::ShardOptions{});
    });
    const double secs = e.Stats().p50;
    e.AddMetric("regions_per_sec", secs > 0.0 ? n / secs : 0.0,
                uv::obs::Direction::kHigherIsBetter);
    e.AddMetric("mem.pool_bytes_peak",
                static_cast<double>(uv::BufferPool::Stats().pool_bytes_peak),
                uv::obs::Direction::kLowerIsBetter);
    e.AddMetric("num_regions", static_cast<double>(n));
    e.AddMetric("num_edges", static_cast<double>(urg.num_edges));
  }

  {
    const uv::urg::NeighborView view(urg);
    uv::urg::MinibatchConfig mcfg;
    mcfg.batch_size = kBatch;
    mcfg.fanout = kFanout;
    mcfg.seed = bench.seed;
    // Strided seed batches: batch b draws {b, b + stride, b + 2*stride, ...},
    // all distinct, spread across the whole grid.
    constexpr int kBatches = 8;
    const int stride = n / kBatch;
    int64_t edges_sampled = 0;
    auto& e = report->RunTimed("city_scale.sampler_" + tag, [&] {
      edges_sampled = 0;
      std::vector<int> seeds(kBatch);
      for (int b = 0; b < kBatches; ++b) {
        for (int i = 0; i < kBatch; ++i) seeds[i] = b + i * stride;
        const auto sg = uv::urg::SampleKHop(view, seeds, mcfg);
        edges_sampled += sg.num_edges();
      }
    });
    const double secs = e.Stats().p50;
    e.AddMetric("subgraphs_per_sec", secs > 0.0 ? kBatches / secs : 0.0,
                uv::obs::Direction::kHigherIsBetter);
    e.AddMetric("edges_per_subgraph",
                static_cast<double>(edges_sampled) / kBatches);
  }

  std::vector<int> train_ids = urg.LabeledIds();
  std::vector<int> train_labels(train_ids.size());
  for (size_t i = 0; i < train_ids.size(); ++i) {
    train_labels[i] = urg.labels[train_ids[i]];
  }
  const int bs = std::min<int>(kBatch, static_cast<int>(train_ids.size()));
  const int num_batches = (static_cast<int>(train_ids.size()) + bs - 1) / bs;

  // Train steps are the expensive closures (one full minibatch epoch per
  // repeat); cap their repeats so a --repeats 5 micro run does not spend an
  // hour here.
  const int step_repeats = std::min(bench.repeats, 2);

  {
    uv::core::CmsfConfig cfg;
    cfg.seed = bench.seed;
    cfg.master_epochs = 1;
    cfg.batch_size = kBatch;
    cfg.fanout = kFanout;
    // Gate off: the step keeps the full master path (MAGA trunk + GSCM +
    // classifier) but skips the end-of-training freeze sweep, which is a
    // one-time cost amortized over real multi-epoch runs.
    cfg.use_gate = false;
    double step_ms = 0.0;
    uint64_t peak_delta = 0, peak = 0;
    auto& e = report->RunTimed("city_scale.train_step_cmsf_" + tag,
                               /*warmup=*/0, step_repeats, [&] {
      uv::BufferPool::ResetPeak();
      const uint64_t base = uv::BufferPool::Stats().pool_bytes;
      uv::Rng rng(bench.seed);
      uv::core::CmsfModel model(cfg, urg.PoiDim(), urg.ImageDim(), &rng);
      const auto result =
          uv::core::TrainMasterMinibatch(&model, urg, train_ids, train_labels);
      step_ms = result.seconds_per_epoch * 1000.0 / num_batches;
      peak = uv::BufferPool::Stats().pool_bytes_peak;
      peak_delta = peak > base ? peak - base : 0;
    });
    e.AddMetric("train_step_ms", step_ms, uv::obs::Direction::kLowerIsBetter);
    e.AddMetric("mem.pool_bytes_peak", static_cast<double>(peak),
                uv::obs::Direction::kLowerIsBetter);
    e.AddMetric("mem.pool_peak_delta", static_cast<double>(peak_delta));
    e.AddMetric("batches_per_epoch", static_cast<double>(num_batches));
  }

  {
    uv::baselines::TrainOptions options;
    options.epochs = 1;
    options.seed = bench.seed;
    options.batch_size = kBatch;
    options.fanout = kFanout;
    double step_ms = 0.0;
    uint64_t peak_delta = 0, peak = 0;
    auto& e = report->RunTimed("city_scale.train_step_gcn_" + tag,
                               /*warmup=*/0, step_repeats, [&] {
      uv::BufferPool::ResetPeak();
      const uint64_t base = uv::BufferPool::Stats().pool_bytes;
      auto detector = uv::baselines::MakeDetector("GCN", options,
                                                  uv::core::CmsfConfig{});
      detector->Train(urg, train_ids, train_labels);
      step_ms = detector->TrainSecondsPerEpoch() * 1000.0 / num_batches;
      peak = uv::BufferPool::Stats().pool_bytes_peak;
      peak_delta = peak > base ? peak - base : 0;
    });
    e.AddMetric("train_step_ms", step_ms, uv::obs::Direction::kLowerIsBetter);
    e.AddMetric("mem.pool_bytes_peak", static_cast<double>(peak),
                uv::obs::Direction::kLowerIsBetter);
    e.AddMetric("mem.pool_peak_delta", static_cast<double>(peak_delta));
    e.AddMetric("batches_per_epoch", static_cast<double>(num_batches));
  }
}

// Serving leg: trains CMSF on the quickstart-shaped city (a Shenzhen-like
// synthetic at quickstart scale), then serves the same 32-id request
// stream through both scoring paths and records the serve.* ledger family:
//   serve.autograd_quickstart  the training-path Score. It has no way to
//                              reuse work across requests — the
//                              master-slave coupling is global, so every
//                              request replays the full-graph autograd
//                              forward and slices out its rows.
//   serve.engine_quickstart    the grad-free engine behind the concurrent
//                              micro-batching ScoringServer; the globally
//                              coupled state is computed once at engine
//                              construction and each request only pays for
//                              its own rows' tail.
// The engine entry carries regions_per_sec and speedup_vs_autograd plus the
// serve.queue_wait_us / serve.batch_size / serve.latency_us histogram
// percentiles captured from the final timed repeat. Both paths are
// verified bit-identical before anything is recorded.
void RunServeSuite(uv::obs::Report* report,
                   const uv::bench::BenchConfig& bench) {
  const uv::synth::CityConfig config =
      uv::synth::ShenzhenLike(/*scale=*/0.02, /*seed=*/42);
  const uv::urg::UrbanRegionGraph urg =
      uv::urg::BuildUrg(uv::synth::GenerateCity(config), uv::urg::UrgOptions{});
  const int n = urg.num_regions();
  std::printf("--- serve: quickstart city, %d regions ---\n", n);

  uv::Rng rng(7);
  const auto folds =
      uv::eval::BlockKFold(urg.grid, urg.LabeledIds(), 3, 10, &rng);
  std::vector<int> train_labels(folds[0].train_ids.size());
  for (size_t i = 0; i < train_labels.size(); ++i) {
    train_labels[i] = urg.labels[folds[0].train_ids[i]];
  }
  uv::core::CmsfConfig cmsf;
  cmsf.num_clusters = 30;
  cmsf.master_epochs = std::min(bench.epochs, 40);
  cmsf.slave_epochs = 10;
  cmsf.seed = bench.seed;
  uv::core::CmsfDetector detector(cmsf);
  detector.Train(urg, folds[0].train_ids, train_labels);

  std::vector<int> all_ids(n);
  for (int id = 0; id < n; ++id) all_ids[id] = id;

  static constexpr int kClients = 4;
  static constexpr int kRequestSize = 32;

  // Autograd serving baseline: each request pays a full-graph forward. A
  // handful of requests is enough to price that per-request cost without
  // stalling CI; regions_per_sec is ids actually served over wall time.
  static constexpr int kAutogradRequests = 8;
  auto& autograd_entry = report->RunTimed("serve.autograd_quickstart", [&] {
    std::vector<int> ids(kRequestSize);
    for (int r = 0; r < kAutogradRequests; ++r) {
      for (int i = 0; i < kRequestSize; ++i) {
        ids[i] = (r * kRequestSize + i) % n;
      }
      (void)detector.Score(urg, ids);
    }
  });
  const double autograd_secs = autograd_entry.Stats().p50;
  const double autograd_rps =
      autograd_secs > 0.0 ? kAutogradRequests * kRequestSize / autograd_secs
                          : 0.0;
  autograd_entry.AddMetric("regions_per_sec", autograd_rps,
                           uv::obs::Direction::kHigherIsBetter);
  autograd_entry.AddMetric("request_size", kRequestSize);
  autograd_entry.AddMetric("requests",
                           static_cast<double>(kAutogradRequests));

  const std::vector<float> autograd_scores = detector.Score(urg, all_ids);

  auto engine = uv::infer::MakeCmsfEngine(*detector.model(),
                                          &detector.frozen(), urg);
  // Bit-identity guard: a ledger entry for a wrong-answer engine would be
  // worse than no entry at all.
  const std::vector<float> engine_scores = engine->Score(all_ids);
  for (int i = 0; i < n; ++i) {
    if (engine_scores[i] != autograd_scores[i]) {
      std::fprintf(stderr,
                   "FATAL: engine/autograd mismatch at region %d (%g vs %g)\n",
                   i, engine_scores[i], autograd_scores[i]);
      std::exit(1);
    }
  }

  // Concurrent serving: 4 clients submit 32-id micro-batches covering every
  // region once per repeat, through the batching dispatcher.
  // Throughput leg: flush as soon as work is queued. With 4 synchronous
  // clients at most 32 ids are ever in flight, so a non-zero deadline just
  // stalls every batch waiting for a 64-id fill that can never happen.
  uv::infer::ServerOptions server_options;
  server_options.deadline_us = 0;
  const auto serve_one_repeat = [&] {
    uv::infer::ScoringServer server(engine.get(), server_options);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([c, n, &server] {
        int ids[kRequestSize];
        float out[kRequestSize];
        // Client c scores ids congruent to c mod kClients, 32 at a time.
        int filled = 0;
        for (int id = c; id < n; id += kClients) {
          ids[filled++] = id;
          if (filled == kRequestSize) {
            server.Score(ids, filled, out);
            filled = 0;
          }
        }
        if (filled > 0) server.Score(ids, filled, out);
      });
    }
    for (auto& c : clients) c.join();
  };
  auto& engine_entry =
      report->RunTimed("serve.engine_quickstart", serve_one_repeat);
  const double engine_secs = engine_entry.Stats().p50;
  const double engine_rps = engine_secs > 0.0 ? n / engine_secs : 0.0;
  engine_entry.AddMetric("regions_per_sec", engine_rps,
                         uv::obs::Direction::kHigherIsBetter);
  engine_entry.AddMetric(
      "speedup_vs_autograd", autograd_rps > 0.0 ? engine_rps / autograd_rps : 0.0,
      uv::obs::Direction::kHigherIsBetter);
  engine_entry.AddMetric("num_regions", static_cast<double>(n));
  engine_entry.AddMetric("clients", kClients);
  engine_entry.AddMetric("request_size", kRequestSize);

  // Same load with a QualityMonitor attached: prices the wait-free drift
  // sketches riding the hot path. throughput_vs_plain is the gated ratio —
  // the monitor must stay within ~10% of unmonitored serving throughput.
  uv::obs::QualityMonitor monitor(detector.baseline(urg));
  engine->SetQualityMonitor(&monitor);
  auto& monitored_entry =
      report->RunTimed("serve.engine_monitored_quickstart", serve_one_repeat);
  engine->SetQualityMonitor(nullptr);
  // Serving the training city: PSI must come out exactly 0, with no alert.
  // A monitored bench entry whose monitor misreports drift would poison
  // the ledger, so treat that like the bit-identity guard above.
  const uv::obs::DriftReport drift = monitor.ComputeDrift();
  if (drift.feature_psi_max != 0.0 || drift.score_psi != 0.0 || drift.alert) {
    std::fprintf(stderr,
                 "FATAL: monitored serve of the training city reported "
                 "drift (feature PSI %.9f, score PSI %.9f, alert %d)\n",
                 drift.feature_psi_max, drift.score_psi, drift.alert ? 1 : 0);
    std::exit(1);
  }
  const double monitored_secs = monitored_entry.Stats().p50;
  const double monitored_rps =
      monitored_secs > 0.0 ? n / monitored_secs : 0.0;
  const double vs_plain = engine_rps > 0.0 ? monitored_rps / engine_rps : 0.0;
  monitored_entry.AddMetric("regions_per_sec", monitored_rps,
                            uv::obs::Direction::kHigherIsBetter);
  monitored_entry.AddMetric("throughput_vs_plain", vs_plain,
                            uv::obs::Direction::kHigherIsBetter);
  monitored_entry.AddMetric("num_regions", static_cast<double>(n));
  monitored_entry.AddMetric("clients", kClients);
  monitored_entry.AddMetric("request_size", kRequestSize);

  std::printf("autograd : %10.0f regions/sec\n", autograd_rps);
  std::printf("engine   : %10.0f regions/sec (%.1fx)\n", engine_rps,
              autograd_rps > 0.0 ? engine_rps / autograd_rps : 0.0);
  std::printf("monitored: %10.0f regions/sec (%.2fx vs plain)\n",
              monitored_rps, vs_plain);
}

// Telemetry demo: runs a ScoringServer under continuous client load for a
// couple of seconds and prints ScoringServer::Stats() ticks — live rolling
// window percentiles, queue depth, in-flight count, dispatcher state —
// plus the tail of the request-event ring. With UV_EXPORT set, the same
// numbers land in the Prometheus/JSON files while this runs; the point of
// the demo is seeing Stats() agree with the exporter. Not a ledger entry
// (it measures nothing; it exercises the introspection surface).
void RunServeMonitor(const uv::bench::BenchConfig& bench) {
  const uv::synth::CityConfig config =
      uv::synth::ShenzhenLike(/*scale=*/0.02, /*seed=*/42);
  const uv::urg::UrbanRegionGraph urg =
      uv::urg::BuildUrg(uv::synth::GenerateCity(config), uv::urg::UrgOptions{});
  const int n = urg.num_regions();
  std::printf("--- serve-monitor: quickstart city, %d regions ---\n", n);

  uv::Rng rng(7);
  const auto folds =
      uv::eval::BlockKFold(urg.grid, urg.LabeledIds(), 3, 10, &rng);
  std::vector<int> train_labels(folds[0].train_ids.size());
  for (size_t i = 0; i < train_labels.size(); ++i) {
    train_labels[i] = urg.labels[folds[0].train_ids[i]];
  }
  uv::core::CmsfConfig cmsf;
  cmsf.num_clusters = 30;
  cmsf.master_epochs = std::min(bench.epochs, 10);
  cmsf.slave_epochs = 5;
  cmsf.seed = bench.seed;
  uv::core::CmsfDetector detector(cmsf);
  detector.Train(urg, folds[0].train_ids, train_labels);
  auto engine = uv::infer::MakeCmsfEngine(*detector.model(),
                                          &detector.frozen(), urg);

  uv::infer::ServerOptions server_options = uv::infer::ServerOptions::FromEnv();
  server_options.slo_window_s = 2;  // Short window so ticks visibly roll.
  if (server_options.event_capacity <= 0) server_options.event_capacity = 256;
  uv::infer::ScoringServer server(engine.get(), server_options);

  static constexpr int kMonitorClients = 2;
  static constexpr int kRequestSize = 32;
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  clients.reserve(kMonitorClients);
  for (int c = 0; c < kMonitorClients; ++c) {
    clients.emplace_back([c, n, &server, &stop] {
      int ids[kRequestSize];
      float out[kRequestSize];
      int cursor = c * kRequestSize;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < kRequestSize; ++i) {
          ids[i] = (cursor + i) % n;
        }
        cursor = (cursor + kRequestSize) % n;
        server.Score(ids, kRequestSize, out);
      }
    });
  }

  static constexpr int kTicks = 3;
  for (int t = 0; t < kTicks; ++t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    const uv::infer::ServerStats s = server.Stats();
    std::printf(
        "tick %d: reqs=%llu batches=%llu depth=%lld inflight=%lld state=%lld "
        "| window(%llus, %llu reqs) latency p50/p95/p99 = %.0f/%.0f/%.0f us, "
        "queue_wait p99 = %.0f us\n",
        t + 1, static_cast<unsigned long long>(s.requests_total),
        static_cast<unsigned long long>(s.batches_total),
        static_cast<long long>(s.queue_depth),
        static_cast<long long>(s.inflight),
        static_cast<long long>(s.dispatcher_state),
        static_cast<unsigned long long>(s.window_us / 1000000),
        static_cast<unsigned long long>(s.window_count), s.latency_p50_us,
        s.latency_p95_us, s.latency_p99_us, s.queue_wait_p99_us);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& c : clients) c.join();
  server.Shutdown();

  const auto events = server.RecentEvents();
  const size_t tail = events.size() < 4 ? events.size() : size_t{4};
  std::printf("last %zu of %zu ring events:\n", tail, events.size());
  for (size_t i = events.size() - tail; i < events.size(); ++i) {
    const auto& e = events[i];
    std::printf("  req=%llu batch=%llu n=%d queue_wait=%lluus latency=%lluus\n",
                static_cast<unsigned long long>(e.id),
                static_cast<unsigned long long>(e.batch), e.n,
                static_cast<unsigned long long>(e.queue_wait_us),
                static_cast<unsigned long long>(e.latency_us));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool micro = false, eval = false, serve = false, serve_monitor = false;
  std::vector<std::string> city_scales;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--micro") == 0) micro = true;
    if (std::strcmp(argv[i], "--eval") == 0) eval = true;
    if (std::strcmp(argv[i], "--serve") == 0) serve = true;
    if (std::strcmp(argv[i], "--serve-monitor") == 0) serve_monitor = true;
    if (std::strncmp(argv[i], "--city-scale=", 13) == 0) {
      city_scales.emplace_back(argv[i] + 13);
    } else if (std::strcmp(argv[i], "--city-scale") == 0 && i + 1 < argc) {
      city_scales.emplace_back(argv[++i]);
    }
  }
  if (!micro && !eval && !serve && !serve_monitor && city_scales.empty()) {
    std::fprintf(stderr,
                 "usage: bench_suite --micro [--eval] [--serve] "
                 "[--serve-monitor] [--city-scale TAG]... "
                 "[--repeats N] [--warmup N] [--out FILE]\n"
                 "       TAG in {93k, 175k, 354k}; repeatable\n");
    return 2;
  }

  const auto bench = uv::bench::BenchConfig::FromArgs(argc, argv);
  auto report = uv::bench::MakeReport("core", bench);
  std::printf("=== bench_suite (warmup=%d, repeats=%d) ===\n", bench.warmup,
              bench.repeats);

  if (micro) RunMicroSuite(&report);
  if (eval) RunEvalSuite(&report, bench);
  if (serve) RunServeSuite(&report, bench);
  if (serve_monitor) RunServeMonitor(bench);
  for (const auto& tag : city_scales) RunCityScaleSuite(&report, bench, tag);

  // The monitor demo records no benchmarks; running it alone must not
  // clobber an existing ledger with an empty one.
  if (micro || eval || serve || !city_scales.empty()) {
    const std::string path =
        uv::bench::LedgerPath("BENCH_core.json", argc, argv);
    uv::bench::WriteLedger(report, path);
  }
  return 0;
}
