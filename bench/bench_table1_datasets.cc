// Regenerates Table I: statistics of the three datasets (#regions, #edges,
// #UVs, #non-UVs). Our cities are synthetic stand-ins generated at
// UV_BENCH_SCALE of the paper's sizes; the paper's numbers are printed
// alongside for comparison.

#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

namespace {

struct PaperRow {
  const char* city;
  long long regions, edges, uvs, nonuvs;
};

constexpr PaperRow kPaper[] = {
    {"Shenzhen", 93600, 3624676, 295, 6867},
    {"Fuzhou", 59872, 1589198, 276, 3685},
    {"Beijing", 354316, 19086524, 204, 10861},
};

}  // namespace

int main(int argc, char** argv) {
  const auto bench = uv::bench::BenchConfig::FromArgs(argc, argv);
  uv::bench::PrintBenchHeader("Table I: statistics of the three datasets",
                              bench);
  auto report = uv::bench::MakeReport("table1", bench);

  uv::TextTable table({"City", "#Regions", "#Edges", "#UVs", "#Non-UVs",
                       "paper:#Regions", "paper:#Edges", "paper:#UVs",
                       "paper:#Non-UVs"});
  for (const auto& row : kPaper) {
    auto config = uv::bench::CityPreset(row.city, bench);
    // Statistics only: the raw tiles are not needed.
    config.generate_images = false;
    auto city = uv::synth::GenerateCity(config);
    uv::urg::UrgOptions options;
    auto urg = uv::urg::BuildUrg(city, options);
    int uvs = 0, nonuvs = 0;
    for (int l : urg.labels) {
      uvs += (l == 1);
      nonuvs += (l == 0);
    }
    auto& entry = report.Bench(row.city);
    entry.AddMetric("regions", urg.num_regions());
    entry.AddMetric("edges", static_cast<double>(urg.num_edges));
    entry.AddMetric("uvs", uvs);
    entry.AddMetric("non_uvs", nonuvs);
    table.AddRow({row.city, std::to_string(urg.num_regions()),
                  std::to_string(urg.num_edges), std::to_string(uvs),
                  std::to_string(nonuvs), std::to_string(row.regions),
                  std::to_string(row.edges), std::to_string(row.uvs),
                  std::to_string(row.nonuvs)});
  }
  table.Print();
  std::printf(
      "\nShape checks: Beijing largest, Fuzhou smallest; edge counts grow\n"
      "super-linearly with area via road connectivity; class imbalance per\n"
      "city follows the paper's UV:non-UV ratios (1:23 / 1:13 / 1:53).\n");
  uv::bench::WriteLedger(
      report, uv::bench::LedgerPath("BENCH_table1.json", argc, argv));
  return 0;
}
