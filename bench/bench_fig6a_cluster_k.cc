// Regenerates Fig. 6(a): sensitivity to the number of latent semantic
// clusters K. Expected shape: AUC rises with K to a city-dependent optimum,
// then degrades as superfluous clusters add noise (paper Section VI-F).

#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  auto bench = uv::bench::BenchConfig::FromArgs(argc, argv);
  if (std::getenv("UV_BENCH_FOLDS") == nullptr) bench.folds = 2;
  uv::bench::PrintBenchHeader(
      "Fig. 6(a): sensitivity to the number of latent clusters K", bench);
  auto report = uv::bench::MakeReport("fig6a", bench);

  for (const auto& city : uv::bench::AblationCityNames()) {
    auto urg = uv::bench::BuildCityUrg(city, bench);
    std::printf("--- %s ---\n", city.c_str());
    uv::TextTable table({"K", "AUC", "F1@3"});
    for (int k : {5, 15, 30, 60, 120}) {
      auto cmsf = uv::bench::CmsfPreset(city, bench);
      cmsf.num_clusters = k;
      auto factory = [cmsf, &bench](uint64_t seed) {
        uv::baselines::TrainOptions options;
        options.epochs = bench.epochs;
        options.seed = seed;
        return uv::baselines::MakeDetector("CMSF", options, cmsf);
      };
      auto stats = uv::eval::RunCrossValidation(
          urg, factory, uv::bench::MakeRunnerOptions(bench));
      uv::eval::AppendRunStats(&report, city + "/K=" + std::to_string(k),
                               stats);
      table.AddRow({std::to_string(k),
                    uv::FormatMeanStd(stats.auc.mean, stats.auc.std),
                    uv::FormatMeanStd(stats.f13.mean, stats.f13.std)});
      std::fprintf(stderr, "[fig6a] %s/K=%d done\n", city.c_str(), k);
    }
    table.Print();
    std::printf("\n");
  }
  uv::bench::WriteLedger(
      report, uv::bench::LedgerPath("BENCH_fig6a.json", argc, argv));
  return 0;
}
