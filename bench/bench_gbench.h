#ifndef UV_BENCH_BENCH_GBENCH_H_
#define UV_BENCH_BENCH_GBENCH_H_

// Bridges the google-benchmark binaries onto the shared perf ledger
// (obs::Report). The console output stays the stock display reporter;
// LedgerReporter wraps it and additionally records seconds-per-iteration
// for every individual run into one ledger entry per benchmark name, so
// `--benchmark_repetitions=N` lands as N repeats with robust stats.
// GBenchLedgerMain replaces BENCHMARK_MAIN(): it peels off the uv flags
// (--repeats/--warmup/--out) before handing argv to gbench, maps --repeats
// onto --benchmark_repetitions (unless the caller passed that gbench flag
// themselves), runs the registered benchmarks, and writes
// BENCH_<suite>.json. --warmup is accepted but inert for gbench binaries:
// gbench's own iteration-count calibration already runs each benchmark
// before timing, so no extra untimed executions are added.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"

namespace uv::bench {

class LedgerReporter : public benchmark::BenchmarkReporter {
 public:
  LedgerReporter(obs::Report* report,
                 benchmark::BenchmarkReporter* display)
      : report_(report), display_(display) {}

  bool ReportContext(const Context& context) override {
    return display_->ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      // Individual runs only: gbench's mean/stddev aggregates and big-O
      // fits would double-count, the ledger derives its own stats.
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      report_->Bench(run.benchmark_name())
          .AddRepeat(run.real_accumulated_time / iters);
    }
    display_->ReportRuns(runs);
  }

  void Finalize() override { display_->Finalize(); }

 private:
  obs::Report* report_;
  benchmark::BenchmarkReporter* display_;
};

// Drop-in replacement for the BENCHMARK_MAIN() body. The uv flags are
// consumed here so gbench does not reject them as unrecognized.
inline int GBenchLedgerMain(const std::string& suite,
                            const std::string& default_out, int argc,
                            char** argv) {
  const BenchConfig bench = BenchConfig::FromArgs(argc, argv);
  const std::string out = LedgerPath(default_out, argc, argv);

  std::vector<char*> kept;
  bool user_set_repetitions = false;
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--repeats") == 0 ||
        std::strcmp(arg, "--warmup") == 0 || std::strcmp(arg, "--out") == 0 ||
        std::strcmp(arg, "-o") == 0) {
      ++i;  // Skip the flag's value too.
      continue;
    }
    if (std::strncmp(arg, "--repeats=", 10) == 0 ||
        std::strncmp(arg, "--warmup=", 9) == 0 ||
        std::strncmp(arg, "--out=", 6) == 0) {
      continue;
    }
    if (std::strncmp(arg, "--benchmark_repetitions", 23) == 0) {
      user_set_repetitions = true;
    }
    kept.push_back(argv[i]);
  }
  // --repeats must actually reach gbench, or the ledger would claim
  // repeats=N while every entry holds a single sample and MAD degenerates
  // to 0. An explicit --benchmark_repetitions wins.
  std::string repetitions_flag =
      "--benchmark_repetitions=" + std::to_string(bench.repeats);
  if (!user_set_repetitions) {
    kept.push_back(repetitions_flag.data());
  }
  int kept_argc = static_cast<int>(kept.size());
  kept.push_back(nullptr);

  auto report = MakeReport(suite, bench);
  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) {
    return 1;
  }
  std::unique_ptr<benchmark::BenchmarkReporter> display(
      benchmark::CreateDefaultDisplayReporter());
  LedgerReporter ledger(&report, display.get());
  benchmark::RunSpecifiedBenchmarks(&ledger);
  benchmark::Shutdown();
  WriteLedger(report, out);
  return 0;
}

}  // namespace uv::bench

#endif  // UV_BENCH_BENCH_GBENCH_H_
