// Regenerates Fig. 7: case study comparing the regions detected by CMSF and
// by UVLens against the ground truth. The paper shows map snippets; here we
// train both methods on one fold, rank the held-out labeled regions, take
// the top 3% as detected UVs, and render an ASCII map plus quantitative
// overlap/contiguity statistics. Expected shape: CMSF's detections match
// the ground truth better and cover the surrounding cells of apparent UV
// regions thanks to the region-dependency modeling.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_common.h"
#include "eval/splits.h"
#include "util/table.h"

namespace {

// Count detected cells that are 8-adjacent to another detected cell.
int ContiguousCount(const uv::graph::GridSpec& grid,
                    const std::vector<int>& detected) {
  std::vector<uint8_t> mark(grid.num_regions(), 0);
  for (int id : detected) mark[id] = 1;
  int contiguous = 0;
  for (int id : detected) {
    const int r = grid.RowOf(id), c = grid.ColOf(id);
    bool has = false;
    for (int dr = -1; dr <= 1 && !has; ++dr) {
      for (int dc = -1; dc <= 1 && !has; ++dc) {
        if ((dr || dc) && grid.InBounds(r + dr, c + dc) &&
            mark[grid.RegionId(r + dr, c + dc)]) {
          has = true;
        }
      }
    }
    contiguous += has;
  }
  return contiguous;
}

void PrintAsciiMap(const uv::urg::UrbanRegionGraph& urg,
                   const std::vector<int>& cmsf_detected,
                   const std::vector<int>& uvlens_detected) {
  const auto& grid = urg.grid;
  std::vector<char> cell(grid.num_regions(), '.');
  for (int id = 0; id < grid.num_regions(); ++id) {
    if (urg.is_uv[id]) cell[id] = 'G';  // Ground truth.
  }
  for (int id : uvlens_detected) cell[id] = (cell[id] == 'G') ? 'U' : 'u';
  for (int id : cmsf_detected) {
    if (cell[id] == 'G') cell[id] = 'C';        // CMSF hit.
    else if (cell[id] == 'U') cell[id] = 'B';   // Both hit.
    else if (cell[id] == 'u') cell[id] = 'b';   // Both, but false alarm.
    else if (cell[id] == '.') cell[id] = 'c';   // CMSF false alarm.
  }
  std::printf(
      "legend: G ground-truth UV (missed) | C CMSF hit | U UVLens hit | "
      "B both hit\n        c CMSF false alarm | u UVLens false alarm | "
      "b both false alarm\n");
  // Print a cropped window around the densest ground-truth area to keep the
  // map readable at large scales.
  int best_row = 0, best_count = -1;
  for (int r = 0; r + 40 <= grid.height || r == 0; ++r) {
    int count = 0;
    for (int rr = r; rr < std::min(grid.height, r + 40); ++rr) {
      for (int c = 0; c < grid.width; ++c) {
        count += urg.is_uv[grid.RegionId(rr, c)];
      }
    }
    if (count > best_count) {
      best_count = count;
      best_row = r;
    }
    if (r + 40 > grid.height) break;
  }
  const int row_end = std::min(grid.height, best_row + 40);
  const int col_end = std::min(grid.width, 100);
  for (int r = best_row; r < row_end; ++r) {
    for (int c = 0; c < col_end; ++c) {
      std::putchar(cell[grid.RegionId(r, c)]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto bench = uv::bench::BenchConfig::FromArgs(argc, argv);
  uv::bench::PrintBenchHeader("Fig. 7: case study (CMSF vs UVLens)", bench);
  auto report = uv::bench::MakeReport("fig7", bench);

  for (const std::string city : {"Fuzhou", "Shenzhen"}) {
    auto urg = uv::bench::BuildCityUrg(city, bench);
    uv::Rng rng(bench.seed);
    auto folds = uv::eval::BlockKFold(urg.grid, urg.LabeledIds(), 3, 10, &rng);
    std::vector<int> train_labels(folds[0].train_ids.size());
    for (size_t i = 0; i < train_labels.size(); ++i) {
      train_labels[i] = urg.labels[folds[0].train_ids[i]];
    }
    // Rank *all labeled regions* as in the paper's case study and take the
    // top 3% as detections.
    const std::vector<int> ranked_ids = urg.LabeledIds();
    const int top_k = std::max(
        1, static_cast<int>(std::ceil(0.03 * ranked_ids.size())));

    std::printf("--- %s: top-%d detections of %zu labeled regions ---\n",
                city.c_str(), top_k, ranked_ids.size());
    uv::TextTable table({"Method", "hits", "hit rate", "contiguous",
                         "true-UV cells"});
    std::vector<std::vector<int>> detections;
    for (const std::string method : {"CMSF", "UVLens"}) {
      auto detector = uv::bench::MakeFactory(method, city, bench)(bench.seed);
      detector->Train(urg, folds[0].train_ids, train_labels);
      auto scores = detector->Score(urg, ranked_ids);
      std::vector<int> order(ranked_ids.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(),
                [&](int a, int b) { return scores[a] > scores[b]; });
      std::vector<int> detected;
      for (int i = 0; i < top_k; ++i) detected.push_back(ranked_ids[order[i]]);
      int hits = 0, truth = 0;
      for (int id : detected) hits += (urg.is_uv[id] != 0);
      for (uint8_t u : urg.is_uv) truth += (u != 0);
      auto& entry = report.Bench(city + "/" + method);
      entry.AddMetric("hits", hits, uv::obs::Direction::kHigherIsBetter);
      entry.AddMetric("hit_rate", static_cast<double>(hits) / top_k,
                      uv::obs::Direction::kHigherIsBetter);
      entry.AddMetric("contiguous", ContiguousCount(urg.grid, detected));
      entry.AddMetric("true_uv_cells", truth);
      table.AddRow({method, std::to_string(hits),
                    uv::FormatDouble(static_cast<double>(hits) / top_k, 3),
                    std::to_string(ContiguousCount(urg.grid, detected)),
                    std::to_string(truth)});
      detections.push_back(std::move(detected));
      std::fprintf(stderr, "[fig7] %s/%s done\n", city.c_str(),
                   method.c_str());
    }
    table.Print();
    std::printf("\n");
    PrintAsciiMap(urg, detections[0], detections[1]);
    std::printf("\n");
  }
  uv::bench::WriteLedger(
      report, uv::bench::LedgerPath("BENCH_fig7.json", argc, argv));
  return 0;
}
