// Regenerates Fig. 5(a): ablation of CMSF's model components. CMSF-M swaps
// MAGA for vanilla GAT stacks (no inter-modal context); CMSF-G removes the
// MS-Gate (master model only); CMSF-H additionally removes the GSCM
// hierarchy. Expected shape: CMSF > CMSF-G > CMSF-H, CMSF-M worst or near
// worst (paper Section VI-E1).

#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  auto bench = uv::bench::BenchConfig::FromArgs(argc, argv);
  if (std::getenv("UV_BENCH_FOLDS") == nullptr) bench.folds = 2;
  uv::bench::PrintBenchHeader("Fig. 5(a): effect of model components", bench);
  auto report = uv::bench::MakeReport("fig5a", bench);

  const std::vector<std::string> variants = {"CMSF", "CMSF-M", "CMSF-G",
                                             "CMSF-H"};
  for (const auto& city : uv::bench::CityNames()) {
    auto urg = uv::bench::BuildCityUrg(city, bench);
    std::printf("--- %s ---\n", city.c_str());
    uv::TextTable table({"Variant", "AUC", "F1@3", "F1@5"});
    for (const auto& variant : variants) {
      auto stats = uv::eval::RunCrossValidation(
          urg, uv::bench::MakeFactory(variant, city, bench),
          uv::bench::MakeRunnerOptions(bench));
      uv::eval::AppendRunStats(&report, city + "/" + variant, stats);
      table.AddRow({variant, uv::FormatMeanStd(stats.auc.mean, stats.auc.std),
                    uv::FormatMeanStd(stats.f13.mean, stats.f13.std),
                    uv::FormatMeanStd(stats.f15.mean, stats.f15.std)});
      std::fprintf(stderr, "[fig5a] %s/%s done\n", city.c_str(),
                   variant.c_str());
    }
    table.Print();
    std::printf("\n");
  }
  uv::bench::WriteLedger(
      report, uv::bench::LedgerPath("BENCH_fig5a.json", argc, argv));
  return 0;
}
