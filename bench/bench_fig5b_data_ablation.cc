// Regenerates Fig. 5(b): ablation of the multi-modal urban data used to
// build the URG. noImage / noCate / noRad / noIndex remove feature groups;
// noRoad / noProx remove one edge relation. Expected shape: the full CMSF
// beats every ablated variant (paper Section VI-E2).

#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

namespace {

struct Variant {
  const char* name;
  uv::urg::FeatureAblation ablation;
  bool use_spatial;
  bool use_road;
};

constexpr Variant kVariants[] = {
    {"full", uv::urg::FeatureAblation::kNone, true, true},
    {"noImage", uv::urg::FeatureAblation::kNoImage, true, true},
    {"noCate", uv::urg::FeatureAblation::kNoCate, true, true},
    {"noRad", uv::urg::FeatureAblation::kNoRad, true, true},
    {"noIndex", uv::urg::FeatureAblation::kNoIndex, true, true},
    {"noRoad", uv::urg::FeatureAblation::kNone, true, false},
    {"noProx", uv::urg::FeatureAblation::kNone, false, true},
};

}  // namespace

int main(int argc, char** argv) {
  auto bench = uv::bench::BenchConfig::FromArgs(argc, argv);
  if (std::getenv("UV_BENCH_FOLDS") == nullptr) bench.folds = 2;
  uv::bench::PrintBenchHeader("Fig. 5(b): effect of multi-modal urban data",
                              bench);
  auto report = uv::bench::MakeReport("fig5b", bench);

  for (const auto& city : uv::bench::AblationCityNames()) {
    auto city_data = uv::synth::GenerateCity(uv::bench::CityPreset(city, bench));
    std::printf("--- %s ---\n", city.c_str());
    uv::TextTable table({"Variant", "AUC", "F1@3"});
    for (const Variant& variant : kVariants) {
      uv::urg::UrgOptions options;
      options.feature_ablation = variant.ablation;
      options.use_spatial_edges = variant.use_spatial;
      options.use_road_edges = variant.use_road;
      auto urg = uv::urg::BuildUrg(city_data, options);
      auto stats = uv::eval::RunCrossValidation(
          urg, uv::bench::MakeFactory("CMSF", city, bench),
          uv::bench::MakeRunnerOptions(bench));
      uv::eval::AppendRunStats(&report, city + "/" + variant.name, stats);
      table.AddRow({variant.name,
                    uv::FormatMeanStd(stats.auc.mean, stats.auc.std),
                    uv::FormatMeanStd(stats.f13.mean, stats.f13.std)});
      std::fprintf(stderr, "[fig5b] %s/%s done\n", city.c_str(), variant.name);
    }
    table.Print();
    std::printf("\n");
  }
  uv::bench::WriteLedger(
      report, uv::bench::LedgerPath("BENCH_fig5b.json", argc, argv));
  return 0;
}
