// Regenerates Fig. 6(c): performance of CMSF vs the most competitive
// baseline (UVLens) as the ratio of available labeled training data shrinks
// (random masks at 10/25/50/75/100%). Expected shape: CMSF stays above
// UVLens at every ratio and degrades more gracefully (paper Section VI-F).

#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  auto bench = uv::bench::BenchConfig::FromArgs(argc, argv);
  if (std::getenv("UV_BENCH_FOLDS") == nullptr) bench.folds = 2;
  uv::bench::PrintBenchHeader("Fig. 6(c): ratio of labeled data", bench);
  auto report = uv::bench::MakeReport("fig6c", bench);

  for (const auto& city : uv::bench::AblationCityNames()) {
    auto urg = uv::bench::BuildCityUrg(city, bench);
    std::printf("--- %s ---\n", city.c_str());
    uv::TextTable table(
        {"Label ratio", "CMSF AUC", "UVLens AUC", "CMSF F1@3", "UVLens F1@3"});
    for (double ratio : {0.10, 0.25, 0.50, 0.75, 1.00}) {
      auto options = uv::bench::MakeRunnerOptions(bench);
      options.label_ratio = ratio;
      auto cmsf = uv::eval::RunCrossValidation(
          urg, uv::bench::MakeFactory("CMSF", city, bench), options);
      auto uvlens = uv::eval::RunCrossValidation(
          urg, uv::bench::MakeFactory("UVLens", city, bench), options);
      const std::string suffix = "/ratio=" + uv::FormatDouble(ratio, 2);
      uv::eval::AppendRunStats(&report, city + "/CMSF" + suffix, cmsf);
      uv::eval::AppendRunStats(&report, city + "/UVLens" + suffix, uvlens);
      table.AddRow({uv::FormatDouble(ratio, 2),
                    uv::FormatMeanStd(cmsf.auc.mean, cmsf.auc.std),
                    uv::FormatMeanStd(uvlens.auc.mean, uvlens.auc.std),
                    uv::FormatMeanStd(cmsf.f13.mean, cmsf.f13.std),
                    uv::FormatMeanStd(uvlens.f13.mean, uvlens.f13.std)});
      std::fprintf(stderr, "[fig6c] %s/ratio=%.2f done\n", city.c_str(),
                   ratio);
    }
    table.Print();
    std::printf("\n");
  }
  uv::bench::WriteLedger(
      report, uv::bench::LedgerPath("BENCH_fig6c.json", argc, argv));
  return 0;
}
