// Regenerates Table II: detection performance (AUC, Recall/Precision/F1 at
// p=3 and p=5) of all eight methods on the three cities, mean (std) across
// runs x folds. The paper's AUC per method is printed in the last column
// for shape comparison.

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

// Paper Table II AUC means, for side-by-side shape checks.
const std::map<std::string, std::map<std::string, double>>& PaperAuc() {
  static const auto* paper = new std::map<std::string, std::map<std::string, double>>{
      {"Fuzhou",
       {{"MLP", 0.837}, {"GCN", 0.831}, {"GAT", 0.850}, {"MMRE", 0.836},
        {"UVLens", 0.854}, {"MUVFCN", 0.846}, {"ImGAGN", 0.865}, {"CMSF", 0.870}}},
      {"Shenzhen",
       {{"MLP", 0.691}, {"GCN", 0.598}, {"GAT", 0.669}, {"MMRE", 0.690},
        {"UVLens", 0.713}, {"MUVFCN", 0.719}, {"ImGAGN", 0.636}, {"CMSF", 0.762}}},
      {"Beijing",
       {{"MLP", 0.699}, {"GCN", 0.715}, {"GAT", 0.782}, {"MMRE", 0.691},
        {"UVLens", 0.772}, {"MUVFCN", 0.750}, {"ImGAGN", 0.698}, {"CMSF", 0.821}}},
  };
  return *paper;
}

}  // namespace

int main(int argc, char** argv) {
  const auto bench = uv::bench::BenchConfig::FromArgs(argc, argv);
  uv::bench::PrintBenchHeader(
      "Table II: detection performance comparison (mean (std))", bench);
  auto report = uv::bench::MakeReport("table2", bench);

  for (const auto& city : uv::bench::CityNames()) {
    auto urg = uv::bench::BuildCityUrg(city, bench);
    std::printf("--- %s (%d regions, %lld edges, %zu labeled) ---\n",
                city.c_str(), urg.num_regions(),
                static_cast<long long>(urg.num_edges),
                urg.LabeledIds().size());
    uv::TextTable table({"Method", "AUC", "R@3", "P@3", "F1@3", "R@5", "P@5",
                         "F1@5", "paper-AUC"});
    for (const auto& method : uv::baselines::AllDetectorNames()) {
      uv::WallTimer timer;
      auto stats = uv::eval::RunCrossValidation(
          urg, uv::bench::MakeFactory(method, city, bench),
          uv::bench::MakeRunnerOptions(bench));
      uv::eval::AppendRunStats(&report, city + "/" + method, stats);
      table.AddRow({method,
                    uv::FormatMeanStd(stats.auc.mean, stats.auc.std),
                    uv::FormatMeanStd(stats.recall3.mean, stats.recall3.std),
                    uv::FormatMeanStd(stats.precision3.mean, stats.precision3.std),
                    uv::FormatMeanStd(stats.f13.mean, stats.f13.std),
                    uv::FormatMeanStd(stats.recall5.mean, stats.recall5.std),
                    uv::FormatMeanStd(stats.precision5.mean, stats.precision5.std),
                    uv::FormatMeanStd(stats.f15.mean, stats.f15.std),
                    uv::FormatDouble(PaperAuc().at(city).at(method), 3)});
      std::fprintf(stderr, "[table2] %s/%s done in %.0fs\n", city.c_str(),
                   method.c_str(), timer.Seconds());
    }
    table.Print();
    std::printf("\n");
  }
  uv::bench::WriteLedger(
      report, uv::bench::LedgerPath("BENCH_table2.json", argc, argv));
  return 0;
}
