// Thread-scaling curves for the parallel compute layer: times the blocked
// Gemm, the conv forward+backward batch kernels, the CSR segment
// aggregation, and one full RunCrossValidation at 1/2/4/N threads, checks
// that metric outputs stay bit-identical across thread counts, and writes
// the curves as a perf ledger (BENCH_scaling.json) through obs::Report —
// one benchmark entry per (kernel, thread count), with per-thread speedups
// attached as metrics.
//
//   UV_BENCH_* knobs apply to the cross-validation leg (see
//   bench_common.h); UV_THREADS caps the largest thread count swept.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "bench_common.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using uv::Tensor;

Tensor RandomTensor(int r, int c, uint64_t seed) {
  uv::Rng rng(seed);
  Tensor t(r, c);
  t.RandomNormal(&rng, 1.0f);
  return t;
}

struct Curve {
  std::string name;
  std::vector<int> threads;
  std::vector<double> seconds;

  void Print() const {
    std::printf("%-24s", name.c_str());
    for (size_t i = 0; i < threads.size(); ++i) {
      std::printf("  %d:%8.4fs (%.2fx)", threads[i], seconds[i],
                  seconds.front() / seconds[i]);
    }
    std::printf("\n");
  }
};

// Times fn at every pool size through the shared measurement protocol
// (1 warmup to cover first touch + pool wake, best-of-reps summary) and
// lands every repeat in the ledger under "<name>/t<threads>".
Curve Sweep(uv::obs::Report* report, const std::string& name,
            const std::vector<int>& thread_counts, int reps,
            const std::function<void()>& fn) {
  Curve curve;
  curve.name = name;
  for (const int t : thread_counts) {
    uv::ThreadPool::SetGlobalThreads(t);
    auto& entry =
        report->RunTimed(name + "/t" + std::to_string(t), 1, reps, fn);
    curve.threads.push_back(t);
    curve.seconds.push_back(entry.Stats().min);
  }
  for (size_t i = 0; i < curve.threads.size(); ++i) {
    report->Bench(name + "/t" + std::to_string(curve.threads[i]))
        .AddMetric("speedup_vs_t1", curve.seconds.front() / curve.seconds[i]);
  }
  curve.Print();
  return curve;
}

}  // namespace

int main(int argc, char** argv) {
  auto bench = uv::bench::BenchConfig::FromArgs(argc, argv);
  const int hw = uv::ThreadPool::NumThreadsFromEnv();
  std::vector<int> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());
  std::printf("=== thread scaling (max env threads: %d) ===\n\n", hw);

  auto report = uv::bench::MakeReport("scaling", bench);
  report.SetConfig("max_env_threads", static_cast<int64_t>(hw));

  // --- Blocked GEMM, 512x512x512. ---
  {
    const Tensor a = RandomTensor(512, 512, 1);
    const Tensor b = RandomTensor(512, 512, 2);
    Tensor c(512, 512);
    Sweep(&report, "gemm_512x512x512", thread_counts, 5, [&] {
      uv::Gemm(false, false, 1.0f, a, b, 0.0f, &c);
    });
  }

  // --- Conv2d forward + backward on a 32-image batch. ---
  {
    const uv::ag::Conv2dSpec spec{3, 32, 32, 16, 3, 1, 1};
    const Tensor x0 = RandomTensor(32, 3 * 32 * 32, 3);
    const Tensor w0 = RandomTensor(16, 3 * 9, 4);
    const Tensor b0 = RandomTensor(1, 16, 5);
    Sweep(&report, "conv_fwd_bwd_batch32", thread_counts, 3, [&] {
      auto x = uv::ag::MakeParam(x0);
      auto w = uv::ag::MakeParam(w0);
      auto b = uv::ag::MakeParam(b0);
      auto y = uv::ag::Conv2d(x, w, b, spec);
      uv::ag::Backward(uv::ag::SumAll(uv::ag::Mul(y, y)));
    });
  }

  // --- CSR segment aggregation (attention softmax + weighted sum). ---
  {
    const int num_segments = 20000;
    auto offsets = std::make_shared<std::vector<int>>();
    offsets->push_back(0);
    uv::Rng rng(6);
    for (int i = 0; i < num_segments; ++i) {
      offsets->push_back(offsets->back() + 4 + rng.UniformInt(8));
    }
    const Tensor scores0 = RandomTensor(offsets->back(), 1, 7);
    const Tensor feats0 = RandomTensor(offsets->back(), 64, 8);
    std::shared_ptr<const std::vector<int>> off = offsets;
    Sweep(&report, "graph_segment_fwd_bwd", thread_counts, 3, [&] {
      auto scores = uv::ag::MakeParam(scores0);
      auto feats = uv::ag::MakeParam(feats0);
      auto alpha = uv::ag::SegmentSoftmax(scores, off);
      auto y = uv::ag::SegmentWeightedSum(alpha, feats, off);
      uv::ag::Backward(uv::ag::SumAll(uv::ag::Mul(y, y)));
    });
  }

  // --- Fold-level parallel cross-validation. ---
  bool metrics_identical = true;
  {
    if (std::getenv("UV_BENCH_RUNS") == nullptr) bench.runs = 2;
    const std::string city = "Fuzhou";
    auto urg = uv::bench::BuildCityUrg(city, bench);
    const auto factory = uv::bench::MakeFactory("GCN", city, bench);
    auto options = uv::bench::MakeRunnerOptions(bench);

    Curve curve;
    curve.name = "cross_validation_gcn";
    std::vector<uv::eval::RunStats> stats_at;
    for (const int t : thread_counts) {
      uv::ThreadPool::SetGlobalThreads(t);
      const auto stats = uv::eval::RunCrossValidation(urg, factory, options);
      curve.threads.push_back(t);
      curve.seconds.push_back(stats.wall_seconds);
      uv::eval::AppendRunStats(
          &report, curve.name + "/t" + std::to_string(t), stats);
      stats_at.push_back(stats);
    }
    for (size_t i = 0; i < curve.threads.size(); ++i) {
      report.Bench(curve.name + "/t" + std::to_string(curve.threads[i]))
          .AddMetric("speedup_vs_t1",
                     curve.seconds.front() / curve.seconds[i]);
    }
    for (const auto& s : stats_at) {
      metrics_identical = metrics_identical &&
                          s.auc.mean == stats_at.front().auc.mean &&
                          s.recall3.mean == stats_at.front().recall3.mean &&
                          s.precision3.mean == stats_at.front().precision3.mean;
    }
    curve.Print();
    std::printf("cross-validation metrics bit-identical across threads: %s\n",
                metrics_identical ? "yes" : "NO");
    // Gated metric: 1 means the determinism contract held; a drop to 0
    // fails bench_diff in the "higher is better" direction.
    report.Bench(curve.name + "/t" + std::to_string(thread_counts.front()))
        .AddMetric("metrics_bit_identical_across_threads",
                   metrics_identical ? 1.0 : 0.0,
                   uv::obs::Direction::kHigherIsBetter);
  }

  uv::bench::WriteLedger(
      report, uv::bench::LedgerPath("BENCH_scaling.json", argc, argv));
  return metrics_identical ? 0 : 1;
}
