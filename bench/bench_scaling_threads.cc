// Thread-scaling curves for the parallel compute layer: times the blocked
// Gemm, the conv forward+backward batch kernels, the CSR segment
// aggregation, and one full RunCrossValidation at 1/2/4/N threads, checks
// that metric outputs stay bit-identical across thread counts, and writes
// BENCH_scaling.json with the speedup curves.
//
//   UV_BENCH_* knobs apply to the cross-validation leg (see
//   bench_common.h); UV_THREADS caps the largest thread count swept.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "bench_common.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using uv::Tensor;

Tensor RandomTensor(int r, int c, uint64_t seed) {
  uv::Rng rng(seed);
  Tensor t(r, c);
  t.RandomNormal(&rng, 1.0f);
  return t;
}

// Best-of-reps wall time of fn at the given pool size.
double TimeAt(int threads, int reps, const std::function<void()>& fn) {
  uv::ThreadPool::SetGlobalThreads(threads);
  fn();  // Warm-up (first touch, pool wake).
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    uv::WallTimer timer;
    fn();
    best = std::min(best, timer.Seconds());
  }
  return best;
}

struct Curve {
  std::string name;
  std::vector<int> threads;
  std::vector<double> seconds;

  void Print() const {
    std::printf("%-24s", name.c_str());
    for (size_t i = 0; i < threads.size(); ++i) {
      std::printf("  %d:%8.4fs (%.2fx)", threads[i], seconds[i],
                  seconds.front() / seconds[i]);
    }
    std::printf("\n");
  }
};

Curve Sweep(const std::string& name, const std::vector<int>& thread_counts,
            int reps, const std::function<void()>& fn) {
  Curve curve;
  curve.name = name;
  for (const int t : thread_counts) {
    curve.threads.push_back(t);
    curve.seconds.push_back(TimeAt(t, reps, fn));
  }
  curve.Print();
  return curve;
}

void WriteJson(const std::vector<Curve>& curves, int hardware_threads,
               bool metrics_identical) {
  FILE* f = std::fopen("BENCH_scaling.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_scaling.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"hardware_threads\": %d,\n", hardware_threads);
  std::fprintf(f, "  \"metrics_bit_identical_across_threads\": %s,\n",
               metrics_identical ? "true" : "false");
  std::fprintf(f, "  \"curves\": {\n");
  for (size_t c = 0; c < curves.size(); ++c) {
    const Curve& curve = curves[c];
    std::fprintf(f, "    \"%s\": {\"threads\": [", curve.name.c_str());
    for (size_t i = 0; i < curve.threads.size(); ++i) {
      std::fprintf(f, "%s%d", i ? ", " : "", curve.threads[i]);
    }
    std::fprintf(f, "], \"seconds\": [");
    for (size_t i = 0; i < curve.seconds.size(); ++i) {
      std::fprintf(f, "%s%.6f", i ? ", " : "", curve.seconds[i]);
    }
    std::fprintf(f, "], \"speedup\": [");
    for (size_t i = 0; i < curve.seconds.size(); ++i) {
      std::fprintf(f, "%s%.3f", i ? ", " : "",
                   curve.seconds.front() / curve.seconds[i]);
    }
    std::fprintf(f, "]}%s\n", c + 1 < curves.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_scaling.json\n");
}

}  // namespace

int main() {
  auto bench = uv::bench::BenchConfig::FromEnv();
  const int hw = uv::ThreadPool::NumThreadsFromEnv();
  std::vector<int> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());
  std::printf("=== thread scaling (max env threads: %d) ===\n\n", hw);

  std::vector<Curve> curves;

  // --- Blocked GEMM, 512x512x512. ---
  {
    const Tensor a = RandomTensor(512, 512, 1);
    const Tensor b = RandomTensor(512, 512, 2);
    Tensor c(512, 512);
    curves.push_back(Sweep("gemm_512x512x512", thread_counts, 5, [&] {
      uv::Gemm(false, false, 1.0f, a, b, 0.0f, &c);
    }));
  }

  // --- Conv2d forward + backward on a 32-image batch. ---
  {
    const uv::ag::Conv2dSpec spec{3, 32, 32, 16, 3, 1, 1};
    const Tensor x0 = RandomTensor(32, 3 * 32 * 32, 3);
    const Tensor w0 = RandomTensor(16, 3 * 9, 4);
    const Tensor b0 = RandomTensor(1, 16, 5);
    curves.push_back(Sweep("conv_fwd_bwd_batch32", thread_counts, 3, [&] {
      auto x = uv::ag::MakeParam(x0);
      auto w = uv::ag::MakeParam(w0);
      auto b = uv::ag::MakeParam(b0);
      auto y = uv::ag::Conv2d(x, w, b, spec);
      uv::ag::Backward(uv::ag::SumAll(uv::ag::Mul(y, y)));
    }));
  }

  // --- CSR segment aggregation (attention softmax + weighted sum). ---
  {
    const int num_segments = 20000;
    auto offsets = std::make_shared<std::vector<int>>();
    offsets->push_back(0);
    uv::Rng rng(6);
    for (int i = 0; i < num_segments; ++i) {
      offsets->push_back(offsets->back() + 4 + rng.UniformInt(8));
    }
    const Tensor scores0 = RandomTensor(offsets->back(), 1, 7);
    const Tensor feats0 = RandomTensor(offsets->back(), 64, 8);
    std::shared_ptr<const std::vector<int>> off = offsets;
    curves.push_back(Sweep("graph_segment_fwd_bwd", thread_counts, 3, [&] {
      auto scores = uv::ag::MakeParam(scores0);
      auto feats = uv::ag::MakeParam(feats0);
      auto alpha = uv::ag::SegmentSoftmax(scores, off);
      auto y = uv::ag::SegmentWeightedSum(alpha, feats, off);
      uv::ag::Backward(uv::ag::SumAll(uv::ag::Mul(y, y)));
    }));
  }

  // --- Fold-level parallel cross-validation. ---
  bool metrics_identical = true;
  {
    if (std::getenv("UV_BENCH_RUNS") == nullptr) bench.runs = 2;
    const std::string city = "Fuzhou";
    auto urg = uv::bench::BuildCityUrg(city, bench);
    const auto factory = uv::bench::MakeFactory("GCN", city, bench);
    auto options = uv::bench::MakeRunnerOptions(bench);

    Curve curve;
    curve.name = "cross_validation_gcn";
    std::vector<uv::eval::RunStats> stats_at;
    for (const int t : thread_counts) {
      uv::ThreadPool::SetGlobalThreads(t);
      const auto stats = uv::eval::RunCrossValidation(urg, factory, options);
      curve.threads.push_back(t);
      curve.seconds.push_back(stats.wall_seconds);
      stats_at.push_back(stats);
    }
    for (const auto& s : stats_at) {
      metrics_identical = metrics_identical &&
                          s.auc.mean == stats_at.front().auc.mean &&
                          s.recall3.mean == stats_at.front().recall3.mean &&
                          s.precision3.mean == stats_at.front().precision3.mean;
    }
    curve.Print();
    curves.push_back(curve);
    std::printf("cross-validation metrics bit-identical across threads: %s\n",
                metrics_identical ? "yes" : "NO");
  }

  WriteJson(curves, hw, metrics_identical);
  return metrics_identical ? 0 : 1;
}
