#ifndef UV_BENCH_BENCH_COMMON_H_
#define UV_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "core/cmsf_config.h"
#include "eval/runner.h"
#include "obs/report.h"
#include "synth/city.h"
#include "urg/urban_region_graph.h"

namespace uv::bench {

// Knobs shared by every table/figure benchmark, overridable via environment
// variables so one run can trade fidelity for wall-clock:
//   UV_BENCH_SCALE   city size as a fraction of the paper's region counts
//                    (default 0.015; 1.0 approximates Table I magnitudes)
//   UV_BENCH_EPOCHS  training epochs per stage-one/baseline (default 70)
//   UV_BENCH_RUNS    repeated random runs (paper: 5; default 1)
//   UV_BENCH_FOLDS   cross-validation folds (paper: 3; default 3)
//   UV_BENCH_SEED    master seed (default 2023)
//   UV_BENCH_REPEATS timed repeats per ledger benchmark (default 5)
//   UV_BENCH_WARMUP  untimed warmup executions before the repeats (default 1)
//
// repeats/warmup are also CLI flags (--repeats N / --repeats=N, --warmup
// likewise) parsed by FromArgs; flags win over the environment. Between
// repeats the measurement harness (obs::Report::RunTimed) calls
// obs::ResetAll() so per-repeat counter deltas (mem.pool_hits,
// threadpool.queue_wait_us, ...) are isolated rather than cumulative.
//
// Orthogonally, UV_THREADS sizes the global worker pool every kernel and
// the fold-parallel runner execute on (default: hardware_concurrency;
// UV_THREADS=1 forces serial execution). Results are bit-identical for
// any UV_THREADS value — see "Parallel execution" in DESIGN.md.
struct BenchConfig {
  double scale = 0.015;
  int epochs = 70;
  int runs = 1;
  int folds = 3;
  uint64_t seed = 2023;
  int repeats = 5;
  int warmup = 1;

  static BenchConfig FromEnv() {
    BenchConfig config;
    if (const char* v = std::getenv("UV_BENCH_SCALE")) config.scale = atof(v);
    if (const char* v = std::getenv("UV_BENCH_EPOCHS")) config.epochs = atoi(v);
    if (const char* v = std::getenv("UV_BENCH_RUNS")) config.runs = atoi(v);
    if (const char* v = std::getenv("UV_BENCH_FOLDS")) config.folds = atoi(v);
    if (const char* v = std::getenv("UV_BENCH_SEED")) config.seed = strtoull(v, nullptr, 10);
    if (const char* v = std::getenv("UV_BENCH_REPEATS")) config.repeats = atoi(v);
    if (const char* v = std::getenv("UV_BENCH_WARMUP")) config.warmup = atoi(v);
    if (config.repeats < 1) config.repeats = 1;
    if (config.warmup < 0) config.warmup = 0;
    return config;
  }

  // Environment first, then CLI flags override. Unrecognized arguments are
  // left alone (the google-benchmark binaries mix in their own flags).
  static BenchConfig FromArgs(int argc, char** argv) {
    BenchConfig config = FromEnv();
    auto value_of = [&](int* i, const char* flag) -> const char* {
      const size_t flag_len = std::strlen(flag);
      if (std::strncmp(argv[*i], flag, flag_len) != 0) return nullptr;
      if (argv[*i][flag_len] == '=') return argv[*i] + flag_len + 1;
      if (argv[*i][flag_len] == '\0' && *i + 1 < argc) return argv[++*i];
      return nullptr;
    };
    for (int i = 1; i < argc; ++i) {
      if (const char* v = value_of(&i, "--repeats")) {
        config.repeats = atoi(v);
      } else if (const char* v = value_of(&i, "--warmup")) {
        config.warmup = atoi(v);
      }
    }
    if (config.repeats < 1) config.repeats = 1;
    if (config.warmup < 0) config.warmup = 0;
    return config;
  }
};

// Builds the ledger for one bench binary with the shared config echoed in,
// repeat/warmup defaults applied, and the suite named after the binary.
inline obs::Report MakeReport(const std::string& suite,
                              const BenchConfig& bench) {
  obs::Report report(suite);
  report.SetConfig("scale", bench.scale);
  report.SetConfig("epochs", static_cast<int64_t>(bench.epochs));
  report.SetConfig("runs", static_cast<int64_t>(bench.runs));
  report.SetConfig("folds", static_cast<int64_t>(bench.folds));
  report.SetConfig("seed", static_cast<int64_t>(bench.seed));
  report.SetConfig("repeats", static_cast<int64_t>(bench.repeats));
  report.SetConfig("warmup", static_cast<int64_t>(bench.warmup));
  report.SetRepeats(bench.warmup, bench.repeats);
  return report;
}

// Resolves where a bench binary writes its ledger: --out/-o flag, then
// UV_BENCH_OUT, then the per-binary default (BENCH_<suite>.json).
inline std::string LedgerPath(const std::string& default_path, int argc = 0,
                              char** argv = nullptr) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 || std::strcmp(argv[i], "-o") == 0) {
      return argv[i + 1];
    }
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) return argv[i] + 6;
  }
  if (const char* v = std::getenv("UV_BENCH_OUT")) return v;
  return default_path;
}

// Writes the ledger and announces it on stderr (stdout carries the
// human-readable tables and must stay byte-comparable across runs).
inline void WriteLedger(const obs::Report& report, const std::string& path) {
  if (report.WriteFile(path)) {
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  }
}

inline const std::vector<std::string>& CityNames() {
  static const std::vector<std::string>* names =
      new std::vector<std::string>{"Fuzhou", "Shenzhen", "Beijing"};
  return *names;
}

// The sensitivity/ablation figures default to the two cheaper cities to
// bound single-core wall-clock; set UV_BENCH_ALL_CITIES=1 to sweep all
// three as in the paper.
inline const std::vector<std::string>& AblationCityNames() {
  static const std::vector<std::string>* names = [] {
    if (std::getenv("UV_BENCH_ALL_CITIES") != nullptr) {
      return new std::vector<std::string>{"Fuzhou", "Shenzhen", "Beijing"};
    }
    return new std::vector<std::string>{"Fuzhou", "Shenzhen"};
  }();
  return *names;
}

inline synth::CityConfig CityPreset(const std::string& name,
                                    const BenchConfig& bench) {
  if (name == "Shenzhen") return synth::ShenzhenLike(bench.scale, bench.seed);
  if (name == "Fuzhou") return synth::FuzhouLike(bench.scale, bench.seed + 1);
  return synth::BeijingLike(bench.scale, bench.seed + 2);
}

// Per-city CMSF architecture settings following Section VI-A (heads = 2 /
// 2 / 1; GSCM AGG = sum / sum / concat), with the cluster count scaled
// alongside the city. The paper's per-city tau (0.1 / 0.01 / 0.1) and
// lambda (0.01 / 1.0 / 0.001) were tuned on the full-scale proprietary
// datasets; at reduced synthetic scale the sharp tau = 0.01 saturates the
// assignment softmax and starves W_B of gradient, so all cities use the
// stable tau = 0.1 / lambda = 0.01 here (overridable via CmsfConfig).
inline core::CmsfConfig CmsfPreset(const std::string& name,
                                   const BenchConfig& bench) {
  core::CmsfConfig config;
  config.seed = bench.seed;
  config.master_epochs = bench.epochs;
  config.temperature = 0.1f;
  config.lambda = 0.01;
  const double k_scale = std::max(0.2, std::sqrt(bench.scale / 0.02) * 0.6);
  if (name == "Shenzhen") {
    config.num_clusters = std::max(10, static_cast<int>(50 * k_scale));
    config.maga_heads = 2;
    config.gscm_agg = nn::AggKind::kSum;
  } else if (name == "Fuzhou") {
    config.num_clusters = std::max(10, static_cast<int>(100 * k_scale));
    config.maga_heads = 2;
    config.gscm_agg = nn::AggKind::kSum;
  } else {  // Beijing
    config.num_clusters = std::max(10, static_cast<int>(100 * k_scale));
    config.maga_heads = 1;
    config.gscm_agg = nn::AggKind::kConcat;
  }
  return config;
}

inline urg::UrbanRegionGraph BuildCityUrg(const std::string& name,
                                          const BenchConfig& bench) {
  synth::City city = synth::GenerateCity(CityPreset(name, bench));
  urg::UrgOptions options;
  return urg::BuildUrg(city, options);
}

inline eval::DetectorFactory MakeFactory(const std::string& method,
                                         const std::string& city,
                                         const BenchConfig& bench) {
  core::CmsfConfig cmsf = CmsfPreset(city, bench);
  return [method, cmsf, bench](uint64_t seed) {
    baselines::TrainOptions options;
    options.epochs = bench.epochs;
    // The CNN baselines train on 256-tile mini-batches per epoch and
    // dominate single-core wall-clock; 50 epochs (~12.8k samples) is past
    // their convergence point at bench scale.
    if (method == "UVLens" || method == "MUVFCN") {
      options.epochs = std::min(options.epochs, 50);
    }
    options.seed = seed;
    return baselines::MakeDetector(method, options, cmsf);
  };
}

inline eval::RunnerOptions MakeRunnerOptions(const BenchConfig& bench) {
  eval::RunnerOptions options;
  options.num_folds = bench.folds;
  options.num_runs = bench.runs;
  options.seed = bench.seed;
  return options;
}

inline void PrintBenchHeader(const char* title, const BenchConfig& bench) {
  std::printf("=== %s ===\n", title);
  std::printf(
      "(synthetic cities; scale=%.3f of paper region counts, epochs=%d, "
      "runs=%d, folds=%d, seed=%llu)\n\n",
      bench.scale, bench.epochs, bench.runs, bench.folds,
      static_cast<unsigned long long>(bench.seed));
}

}  // namespace uv::bench

#endif  // UV_BENCH_BENCH_COMMON_H_
