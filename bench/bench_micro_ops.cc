// Microbenchmarks for the numeric substrate: tensor kernels and the graph
// message-passing autograd ops. These also empirically confirm the linear
// scaling in |V| and |E| claimed by the paper's complexity analysis
// (Section V-D, eq. 25-28).

#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "bench_gbench.h"
#include "graph/csr_graph.h"
#include "graph/grid.h"
#include "nn/graph_context.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace {

uv::Tensor RandomTensor(int r, int c, uint64_t seed) {
  uv::Rng rng(seed);
  uv::Tensor t(r, c);
  t.RandomNormal(&rng, 1.0f);
  return t;
}

uv::nn::GraphContext GridContext(int side) {
  uv::graph::GridSpec grid{side, side, 128.0};
  auto csr = uv::graph::CsrGraph::FromEdges(
      grid.num_regions(), uv::graph::BuildSpatialProximityEdges(grid), false,
      true);
  return uv::nn::GraphContext::FromCsr(csr);
}

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  uv::Tensor a = RandomTensor(n, 64, 1);
  uv::Tensor b = RandomTensor(64, 64, 2);
  uv::Tensor c(n, 64);
  for (auto _ : state) {
    uv::Gemm(false, false, 1.0f, a, b, 0.0f, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) * 64 *
                          64);
}
BENCHMARK(BM_Gemm)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_RowSoftmax(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  uv::Tensor a = RandomTensor(n, 50, 3);
  for (auto _ : state) {
    uv::Tensor s = uv::RowSoftmax(a, 0.1f);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RowSoftmax)->Arg(1024)->Arg(8192);

// Attention message passing over a grid graph: the per-epoch inner loop of
// every GNN in this library. Linear in |E| per eq. 25.
void BM_AttentionPass(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  auto ctx = GridContext(side);
  const int n = side * side;
  auto x = uv::ag::MakeConst(RandomTensor(n, 64, 4));
  auto w = uv::ag::MakeConst(RandomTensor(64, 32, 5));
  auto a_src = uv::ag::MakeConst(RandomTensor(32, 1, 6));
  auto a_dst = uv::ag::MakeConst(RandomTensor(32, 1, 7));
  for (auto _ : state) {
    auto h = uv::ag::MatMul(x, w);
    auto scores = uv::ag::LeakyRelu(
        uv::ag::Add(uv::ag::GatherRows(uv::ag::MatMul(h, a_dst), ctx.dst_ids),
                    uv::ag::GatherRows(uv::ag::MatMul(h, a_src), ctx.src_ids)),
        0.2f);
    auto alpha = uv::ag::SegmentSoftmax(scores, ctx.offsets);
    auto out = uv::ag::SegmentWeightedSum(
        alpha, uv::ag::GatherRows(h, ctx.src_ids), ctx.offsets);
    benchmark::DoNotOptimize(out->value.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ctx.src_ids->size()));
}
BENCHMARK(BM_AttentionPass)->Arg(32)->Arg(64)->Arg(128);

// regions->clusters->regions round trip of GSCM. Linear in |V|*K (eq. 26).
void BM_ClusterRoundTrip(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = 50;
  auto x = uv::ag::MakeConst(RandomTensor(n, 64, 8));
  auto wb = uv::ag::MakeConst(RandomTensor(64, k, 9));
  auto seg = std::make_shared<std::vector<int>>(n);
  uv::Rng rng(10);
  for (auto& s : *seg) s = rng.UniformInt(k);
  for (auto _ : state) {
    auto soft = uv::ag::RowSoftmax(uv::ag::MatMul(x, wb), 0.1f);
    auto clusters = uv::ag::SegmentSumByIds(x, seg, k);
    auto back = uv::ag::MatMul(soft, clusters);
    benchmark::DoNotOptimize(back->value.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n) * k);
}
BENCHMARK(BM_ClusterRoundTrip)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_BackwardPass(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  auto ctx = GridContext(side);
  const int n = side * side;
  auto x = uv::ag::MakeConst(RandomTensor(n, 64, 11));
  for (auto _ : state) {
    auto w = uv::ag::MakeParam(RandomTensor(64, 32, 12));
    auto h = uv::ag::Relu(uv::ag::MatMul(x, w));
    auto gathered = uv::ag::GatherRows(h, ctx.src_ids);
    auto agg = uv::ag::SegmentWeightedSum(ctx.gcn_norm, gathered, ctx.offsets);
    auto loss = uv::ag::MeanAll(uv::ag::Mul(agg, agg));
    uv::ag::Backward(loss);
    benchmark::DoNotOptimize(w->grad.data());
  }
}
BENCHMARK(BM_BackwardPass)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  return uv::bench::GBenchLedgerMain("micro_ops", "BENCH_micro_ops.json",
                                     argc, argv);
}
