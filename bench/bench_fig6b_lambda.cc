// Regenerates Fig. 6(b): sensitivity to the balancing weight lambda of the
// slave-stage joint loss. Expected shape: performance rises with a moderate
// lambda (the PU rank loss regularizes the context) then declines when it
// dominates training (paper Section VI-F).

#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  auto bench = uv::bench::BenchConfig::FromArgs(argc, argv);
  if (std::getenv("UV_BENCH_FOLDS") == nullptr) bench.folds = 2;
  uv::bench::PrintBenchHeader("Fig. 6(b): sensitivity to balancing weight",
                              bench);
  auto report = uv::bench::MakeReport("fig6b", bench);

  for (const auto& city : uv::bench::AblationCityNames()) {
    auto urg = uv::bench::BuildCityUrg(city, bench);
    std::printf("--- %s ---\n", city.c_str());
    uv::TextTable table({"lambda", "AUC", "F1@3"});
    for (double lambda : {0.001, 0.01, 0.1, 1.0, 10.0}) {
      auto cmsf = uv::bench::CmsfPreset(city, bench);
      cmsf.lambda = lambda;
      auto factory = [cmsf, &bench](uint64_t seed) {
        uv::baselines::TrainOptions options;
        options.epochs = bench.epochs;
        options.seed = seed;
        return uv::baselines::MakeDetector("CMSF", options, cmsf);
      };
      auto stats = uv::eval::RunCrossValidation(
          urg, factory, uv::bench::MakeRunnerOptions(bench));
      uv::eval::AppendRunStats(
          &report, city + "/lambda=" + uv::FormatDouble(lambda, 3), stats);
      table.AddRow({uv::FormatDouble(lambda, 3),
                    uv::FormatMeanStd(stats.auc.mean, stats.auc.std),
                    uv::FormatMeanStd(stats.f13.mean, stats.f13.std)});
      std::fprintf(stderr, "[fig6b] %s/lambda=%g done\n", city.c_str(),
                   lambda);
    }
    table.Print();
    std::printf("\n");
  }
  uv::bench::WriteLedger(
      report, uv::bench::LedgerPath("BENCH_fig6b.json", argc, argv));
  return 0;
}
