// Regenerates Table III: per-epoch training time, inference time, and model
// size for every method in Shenzhen and Fuzhou. Absolute times depend on
// hardware; the orderings (simple models fastest, CNN methods largest, MMRE
// slowest to train, CMSF small and mid-speed) are the reproduction target.

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/splits.h"
#include "util/buffer_pool.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

struct PaperRow {
  double train_sz, train_fz, infer_sz, infer_fz, size_mb;
};

const std::map<std::string, PaperRow>& Paper() {
  static const auto* paper = new std::map<std::string, PaperRow>{
      {"MLP", {0.075, 0.032, 0.037, 0.012, 1.048}},
      {"GCN", {0.022, 0.021, 0.010, 0.009, 2.159}},
      {"GAT", {0.053, 0.040, 0.026, 0.022, 2.369}},
      {"MMRE", {240.4, 116.7, 0.002, 0.002, 3.981}},
      {"UVLens", {0.369, 0.443, 0.194, 0.189, 450.1}},
      {"MUVFCN", {0.607, 0.645, 0.271, 0.264, 91.37}},
      {"ImGAGN", {0.042, 0.026, 0.016, 0.008, 133.5}},
      {"CMSF", {0.187, 0.342, 0.112, 0.062, 7.433}},
  };
  return *paper;
}

}  // namespace

int main(int argc, char** argv) {
  auto bench = uv::bench::BenchConfig::FromArgs(argc, argv);
  // Timing only needs a few epochs; keep runs/folds minimal.
  bench.epochs = std::min(bench.epochs, 12);
  uv::bench::PrintBenchHeader(
      "Table III: efficiency comparison in Shenzhen and Fuzhou", bench);
  auto report = uv::bench::MakeReport("table3", bench);

  std::map<std::string, std::map<std::string, uv::eval::RunStats>> results;
  for (const std::string city : {"Shenzhen", "Fuzhou"}) {
    auto urg = uv::bench::BuildCityUrg(city, bench);
    uv::Rng rng(bench.seed);
    auto folds = uv::eval::BlockKFold(urg.grid, urg.LabeledIds(), 3, 10, &rng);
    std::vector<int> train_labels(folds[0].train_ids.size());
    for (size_t i = 0; i < train_labels.size(); ++i) {
      train_labels[i] = urg.labels[folds[0].train_ids[i]];
    }
    // Inference over all labeled regions, mirroring "obtaining the output
    // probability from raw input" for the deployed detector.
    const std::vector<int> all_labeled = urg.LabeledIds();
    for (const auto& method : uv::baselines::AllDetectorNames()) {
      auto detector = uv::bench::MakeFactory(method, city, bench)(bench.seed);
      uv::WallTimer wall;
      detector->Train(urg, folds[0].train_ids, train_labels);
      (void)detector->Score(urg, all_labeled);
      uv::eval::RunStats stats;
      stats.wall_seconds = wall.Seconds();
      stats.train_seconds_per_epoch = detector->TrainSecondsPerEpoch();
      stats.inference_seconds = detector->LastInferenceSeconds();
      // The summed estimate rebuilt from the per-phase timers the detector
      // reports; printed beside the measured wall clock so a gap between
      // the two (untimed setup, epochs the timer missed) is visible
      // instead of silently folded into either number.
      stats.summed_job_seconds =
          stats.train_seconds_per_epoch * bench.epochs +
          stats.inference_seconds;
      stats.num_parameters = detector->NumParameters();
      const std::vector<double> epochs = detector->EpochSecondsHistory();
      stats.epoch_seconds_p50 = uv::eval::Percentile(epochs, 50.0);
      stats.epoch_seconds_p95 = uv::eval::Percentile(epochs, 95.0);
      results[method][city] = stats;
      uv::eval::AppendRunStats(&report, city + "/" + method, stats);
      std::fprintf(stderr, "[table3] %s/%s done\n", city.c_str(),
                   method.c_str());
    }
  }

  uv::TextTable table({"Method", "Train(s) SZ", "Train(s) FZ", "Infer(s) SZ",
                       "Infer(s) FZ", "Wall(s) SZ", "Summed(s) SZ",
                       "Ep p50 SZ", "Ep p95 SZ", "Size(MB)", "paper:Train SZ",
                       "paper:Size(MB)"});
  for (const auto& method : uv::baselines::AllDetectorNames()) {
    const auto& sz = results[method]["Shenzhen"];
    const auto& fz = results[method]["Fuzhou"];
    const double mb = sz.num_parameters * 4.0 / (1024.0 * 1024.0);
    const auto& paper = Paper().at(method);
    table.AddRow({method, uv::FormatDouble(sz.train_seconds_per_epoch, 4),
                  uv::FormatDouble(fz.train_seconds_per_epoch, 4),
                  uv::FormatDouble(sz.inference_seconds, 4),
                  uv::FormatDouble(fz.inference_seconds, 4),
                  uv::FormatDouble(sz.wall_seconds, 4),
                  uv::FormatDouble(sz.summed_job_seconds, 4),
                  uv::FormatDouble(sz.epoch_seconds_p50, 4),
                  uv::FormatDouble(sz.epoch_seconds_p95, 4),
                  uv::FormatDouble(mb, 3),
                  uv::FormatDouble(paper.train_sz, 3),
                  uv::FormatDouble(paper.size_mb, 3)});
  }
  table.Print();
  std::printf(
      "\nShape targets: MLP/GCN/GAT cheapest; MMRE slowest training (per-\n"
      "node negative sampling) yet fastest inference (precomputed\n"
      "embeddings); UVLens the largest model; CMSF orders of magnitude\n"
      "smaller than the CNN methods at competitive speed.\n"
      "Wall(s) is the measured train+infer wall clock; Summed(s) is the\n"
      "estimate rebuilt from the reported per-epoch and inference timers\n"
      "(train_s/epoch x epochs + infer). A gap between them is untimed\n"
      "setup work, not a reporting error in either column.\n");
  if (uv::MemStatsRequested()) {
    std::printf("\n%s\n", uv::FormatMemStats(uv::BufferPool::Stats()).c_str());
  }
  uv::bench::WriteLedger(
      report, uv::bench::LedgerPath("BENCH_table3.json", argc, argv));
  return 0;
}
