// Counts heap allocations per inference request on the grad-free engine by
// interposing the global operator new/delete in this binary (the same
// harness as bench_micro_alloc). After a warmup pass that sizes the
// engine's pooled workspaces, steady-state scoring must stay at or below
// kMaxAllocsPerRequest heap allocations per request for every probed
// request size; the process exits non-zero otherwise, so the check can
// gate CI.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench_common.h"
#include "core/cmsf_detector.h"
#include "eval/splits.h"
#include "infer/engine.h"

namespace {

constexpr double kMaxAllocsPerRequest = 5.0;

std::atomic<bool> g_counting{false};
std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_alloc_bytes{0};

void CountAlloc(std::size_t n) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  }
}

void* AllocOrThrow(std::size_t n) {
  CountAlloc(n);
  if (void* p = std::malloc(n > 0 ? n : 1)) return p;
  throw std::bad_alloc();
}

void* AllocAligned(std::size_t n, std::size_t align) {
  CountAlloc(n);
  void* p = nullptr;
  if (posix_memalign(&p, align, n > 0 ? n : align) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return AllocOrThrow(n); }
void* operator new[](std::size_t n) { return AllocOrThrow(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return AllocAligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return AllocAligned(n, static_cast<std::size_t>(a));
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  CountAlloc(n);
  return std::malloc(n > 0 ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  CountAlloc(n);
  return std::malloc(n > 0 ? n : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

int main(int argc, char** argv) {
  auto bench = uv::bench::BenchConfig::FromArgs(argc, argv);
  bench.epochs = std::min(bench.epochs, 10);
  uv::bench::PrintBenchHeader(
      "Micro: heap allocations per grad-free inference request", bench);
  auto report = uv::bench::MakeReport("serve_alloc", bench);

  auto urg = uv::bench::BuildCityUrg("Fuzhou", bench);
  uv::Rng rng(bench.seed);
  auto folds = uv::eval::BlockKFold(urg.grid, urg.LabeledIds(), 3, 10, &rng);
  std::vector<int> train_labels(folds[0].train_ids.size());
  for (size_t i = 0; i < train_labels.size(); ++i) {
    train_labels[i] = urg.labels[folds[0].train_ids[i]];
  }

  uv::core::CmsfConfig cfg = uv::bench::CmsfPreset("Fuzhou", bench);
  cfg.master_epochs = bench.epochs;
  cfg.slave_epochs = std::min(cfg.slave_epochs, 5);
  uv::core::CmsfDetector detector(cfg);
  detector.Train(urg, folds[0].train_ids, train_labels);
  auto engine =
      uv::infer::MakeCmsfEngine(*detector.model(), &detector.frozen(), urg);

  const int n = engine->num_regions();
  constexpr int kRequests = 512;
  bool pass = true;
  for (const int request_size : {1, 8, 64}) {
    std::vector<int> ids(request_size);
    std::vector<float> out(request_size);
    auto run_requests = [&] {
      for (int r = 0; r < kRequests; ++r) {
        for (int i = 0; i < request_size; ++i) {
          ids[i] = (r * request_size + i) % n;
        }
        engine->ScoreInto(ids.data(), request_size, out.data());
      }
    };
    // Warmup pass: sizes the pooled workspaces and any lazily-created
    // per-thread kernel scratch for this request shape.
    run_requests();

    g_allocs.store(0);
    g_alloc_bytes.store(0);
    g_counting.store(true);
    run_requests();
    g_counting.store(false);

    const double allocs_per_request =
        static_cast<double>(g_allocs.load()) / kRequests;
    const double bytes_per_request =
        static_cast<double>(g_alloc_bytes.load()) / kRequests;
    char name[64];
    std::snprintf(name, sizeof(name), "engine_request_%d", request_size);
    auto& entry = report.Bench(name);
    entry.AddMetric("allocs_per_request", allocs_per_request,
                    uv::obs::Direction::kLowerIsBetter);
    entry.AddMetric("bytes_per_request", bytes_per_request,
                    uv::obs::Direction::kLowerIsBetter);
    std::printf("request_size %2d: %.3f heap allocs/request (%.1f B/request)\n",
                request_size, allocs_per_request, bytes_per_request);
    if (allocs_per_request > kMaxAllocsPerRequest) pass = false;
  }

  uv::bench::WriteLedger(
      report, uv::bench::LedgerPath("BENCH_serve_alloc.json", argc, argv));
  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: steady-state engine scoring must stay <= %.0f heap "
                 "allocs/request\n",
                 kMaxAllocsPerRequest);
    return 1;
  }
  std::printf("PASS (target <= %.0f allocs/request)\n", kMaxAllocsPerRequest);
  return 0;
}
