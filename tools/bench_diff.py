#!/usr/bin/env python3
"""Compares two perf ledgers (uv-perf-ledger-v1, as written by obs::Report)
and exits nonzero on regression, so CI can gate perf PRs.

For every benchmark present in both ledgers the timing comparison is
noise-aware: the median (p50) of the timed repeats must move by more than
--tolerance-mads median-absolute-deviations AND by more than --min-ratio
multiplicatively before it counts as a regression. The MAD term absorbs
repeat-to-repeat jitter measured on the same machine; the ratio term
absorbs machine-to-machine offsets (a committed baseline from one host
gated on a shared CI runner), while still catching the order-of-magnitude
cliffs a dropped buffer pool or a serialized GEMM produces.

Scalar metrics carry a per-metric direction in the ledger ("lower",
"higher", "info"); directed metrics are gated with the ratio test in their
own direction, "info" metrics are reported but never gate.

Usage:
  tools/bench_diff.py baseline.json new.json [--tolerance-mads 5]
      [--min-ratio 1.5] [--fail-on-missing]

Exit codes: 0 = no regression, 1 = regression(s), 2 = bad input.
"""

import argparse
import json
import sys

SCHEMA = "uv-perf-ledger-v1"


def load_ledger(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != SCHEMA:
        print(
            f"bench_diff: {path}: schema {doc.get('schema')!r} != {SCHEMA!r}",
            file=sys.stderr,
        )
        sys.exit(2)
    if not isinstance(doc.get("benchmarks"), dict):
        print(f"bench_diff: {path}: missing 'benchmarks' object",
              file=sys.stderr)
        sys.exit(2)
    return doc


def fmt_seconds(s):
    if s >= 1.0:
        return f"{s:.3f}s"
    if s >= 1e-3:
        return f"{s * 1e3:.3f}ms"
    return f"{s * 1e6:.1f}us"


def bad_input(msg):
    print(f"bench_diff: {msg}", file=sys.stderr)
    sys.exit(2)


def compare_timing(name, base, new, tol_mads, min_ratio, rows, regressions):
    bstats, nstats = base.get("stats"), new.get("stats")
    if not bstats or not nstats:
        return
    b50, n50 = bstats.get("p50"), nstats.get("p50")
    if not isinstance(b50, (int, float)) or not isinstance(n50, (int, float)):
        # null here means obs::Report serialized a non-finite measurement;
        # a missing key means a hand-edited or foreign ledger. Either way
        # the comparison would be meaningless, so treat it as bad input.
        bad_input(f"{name}: stats.p50 missing or non-numeric "
                  f"(baseline={b50!r}, new={n50!r})")
    # Jitter scale: the larger of the two MADs, floored at 1% of the
    # baseline median so a suspiciously quiet sample set cannot make the
    # gate hair-triggered.
    bmad, nmad = bstats.get("mad"), nstats.get("mad")
    mads = [m for m in (bmad, nmad) if isinstance(m, (int, float))]
    mad = max(mads + [0.01 * b50])
    delta = n50 - b50
    ratio = n50 / b50 if b50 > 0 else float("inf")
    verdict = "ok"
    if delta > tol_mads * mad and ratio > min_ratio:
        verdict = "REGRESSION"
        regressions.append(
            f"{name}: p50 {fmt_seconds(b50)} -> {fmt_seconds(n50)} "
            f"({ratio:.2f}x, {delta / mad if mad > 0 else 0:.1f} MADs)"
        )
    elif -delta > tol_mads * mad and b50 > 0 and 1.0 / ratio > min_ratio:
        verdict = "improved"
    rows.append((name, fmt_seconds(b50), fmt_seconds(n50),
                 f"{ratio - 1.0:+.1%}" if b50 > 0 else "n/a", verdict))


def compare_metrics(name, base, new, min_ratio, rows, regressions):
    bmetrics = base.get("metrics", {})
    nmetrics = new.get("metrics", {})
    for key in bmetrics:
        if key not in nmetrics:
            continue
        direction = bmetrics[key].get("direction", "info")
        bval, nval = bmetrics[key].get("value"), nmetrics[key].get("value")
        if not isinstance(bval, (int, float)) or not isinstance(
            nval, (int, float)
        ):
            # null = non-finite measurement (see obs::Report); don't let a
            # broken metric silently drop out of the comparison.
            bad_input(f"{name}/{key}: metric value missing or non-numeric "
                      f"(baseline={bval!r}, new={nval!r})")
        verdict = "ok"
        worse = None
        if direction == "lower" and bval > 0 and nval / bval > min_ratio:
            worse = nval / bval
        elif direction == "higher" and bval > 0:
            # A metric that collapses to (or below) zero is always a
            # regression; otherwise apply the ratio test.
            if nval <= 0:
                worse = float("inf")
            elif bval / nval > min_ratio:
                worse = bval / nval
        if worse is not None:
            verdict = "REGRESSION"
            regressions.append(
                f"{name}/{key} ({direction} is better): "
                f"{bval:g} -> {nval:g} ({worse:.2f}x worse)"
            )
        label = f"{name}/{key}" + ("" if direction == "info" else f" [{direction}]")
        rows.append((label, f"{bval:g}", f"{nval:g}", "", verdict))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline ledger JSON")
    parser.add_argument("new", help="fresh ledger JSON to gate")
    parser.add_argument(
        "--tolerance-mads",
        type=float,
        default=5.0,
        help="timing regression threshold in median-absolute-deviations",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=1.5,
        help="multiplicative floor a change must also exceed to gate",
    )
    parser.add_argument(
        "--fail-on-missing",
        action="store_true",
        help="treat benchmarks missing from the new ledger as regressions",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="only print regressions"
    )
    args = parser.parse_args()

    base = load_ledger(args.baseline)
    new = load_ledger(args.new)
    base_benches = base["benchmarks"]
    new_benches = new["benchmarks"]

    benv, nenv = base.get("env", {}), new.get("env", {})
    for key in ("hardware_threads", "compiler", "build_type", "git_sha",
                "simd"):
        if benv.get(key) != nenv.get(key) and not args.quiet:
            print(
                f"bench_diff: note: env.{key} differs: "
                f"{benv.get(key)!r} (baseline) vs {nenv.get(key)!r} (new)"
            )

    rows = []
    regressions = []
    missing = [n for n in base_benches if n not in new_benches]
    added = [n for n in new_benches if n not in base_benches]
    for name in base_benches:
        if name not in new_benches:
            continue
        compare_timing(
            name,
            base_benches[name],
            new_benches[name],
            args.tolerance_mads,
            args.min_ratio,
            rows,
            regressions,
        )
        compare_metrics(
            name, base_benches[name], new_benches[name], args.min_ratio,
            rows, regressions,
        )

    if missing:
        msg = f"benchmarks missing from new ledger: {missing}"
        if args.fail_on_missing:
            regressions.append(msg)
        else:
            print(f"bench_diff: warning: {msg}", file=sys.stderr)
    if added and not args.quiet:
        print(f"bench_diff: new benchmarks (not gated): {added}")

    if not args.quiet and rows:
        name_w = max(len(r[0]) for r in rows)
        print(f"{'benchmark':<{name_w}}  {'baseline':>12}  {'new':>12}  "
              f"{'delta':>8}  verdict")
        for name, b, n, d, verdict in rows:
            print(f"{name:<{name_w}}  {b:>12}  {n:>12}  {d:>8}  {verdict}")

    if regressions:
        print(f"\nbench_diff: {len(regressions)} regression(s):",
              file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        sys.exit(1)
    if not rows:
        print("bench_diff: no comparable benchmarks between the two ledgers",
              file=sys.stderr)
        sys.exit(2)
    print(f"bench_diff: OK ({len(rows)} comparisons, no regressions)")


if __name__ == "__main__":
    main()
