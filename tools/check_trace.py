#!/usr/bin/env python3
"""Validates the three obs output formats: UV_TRACE traces, UV_METRICS
logs, and perf ledgers (obs::Report).

Trace files (Chrome trace-event JSON, as written by src/obs/trace.cc):
  * the file parses as JSON with a "traceEvents" array;
  * every duration-begin event ("ph": "B") has a matching end ("ph": "E")
    on the same (pid, tid), properly nested (LIFO) per thread;
  * timestamps are non-negative and each E is at or after its B;
  * optionally, --require asserts that specific span names are present.

Metrics files (JSONL, as written by src/obs/metrics_log.cc):
  * every line parses as a JSON object with a "kind" field;
  * "epoch" records carry numeric "epoch" and "loss" fields;
  * ts_us is non-decreasing per (run, fold, stage) epoch series;
  * the final record is the "registry" dump.

Perf ledgers (uv-perf-ledger-v1 JSON, as written by src/obs/report.cc):
  * schema tag, env fingerprint, config, and a non-empty benchmarks map;
  * per benchmark: repeats with non-negative seconds and monotone ts_us,
    or scalar metrics with a valid direction (or both);
  * stats consistency: min <= p50 <= p95 <= max, mad >= 0, and the
    repeat count matches the serialized repeats array;
  * null where a number is required fails (obs::Report serializes a
    non-finite measurement as null rather than masking it as 0).

Usage:
  tools/check_trace.py --trace trace.json --require fold,epoch,gemm
  tools/check_trace.py --metrics metrics.jsonl
  tools/check_trace.py --ledger BENCH_core.json
  tools/check_trace.py --trace t.json --metrics m.jsonl --require fold

Exits 0 when every check passes, 1 otherwise (so CI can gate on it).
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path, required_names):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: missing 'traceEvents' array")

    stacks = {}  # (pid, tid) -> [name, ...] of open B events.
    seen_names = set()
    durations = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"{path}: event #{i} is not an object")
        ph = ev.get("ph")
        if ph == "M":  # Metadata (process/thread names): no pairing rules.
            continue
        if ph not in ("B", "E"):
            fail(f"{path}: event #{i} has unexpected ph={ph!r}")
        key = (ev.get("pid"), ev.get("tid"))
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{path}: event #{i} has bad ts={ts!r}")
        if ph == "B":
            seen_names.add(ev.get("name"))
            stacks.setdefault(key, []).append((ev.get("name"), ts))
        else:
            stack = stacks.get(key)
            if not stack:
                fail(f"{path}: event #{i}: E with no open B on tid {key}")
            name, begin_ts = stack.pop()
            if ev.get("name") not in (None, name):
                fail(
                    f"{path}: event #{i}: E named {ev.get('name')!r} closes "
                    f"B named {name!r} on tid {key} (bad nesting)"
                )
            if ts < begin_ts:
                fail(f"{path}: event #{i}: span {name!r} ends before it begins")
            durations += 1
    for key, stack in stacks.items():
        if stack:
            fail(f"{path}: {len(stack)} unclosed B events on tid {key}: "
                 f"{[name for name, _ in stack]}")
    if durations == 0:
        fail(f"{path}: no duration spans recorded")

    missing = [n for n in required_names if n not in seen_names]
    if missing:
        fail(f"{path}: required span names absent: {missing}; "
             f"present: {sorted(n for n in seen_names if n)}")
    print(f"check_trace: {path}: OK ({durations} spans, "
          f"{len(seen_names)} distinct names)")


def check_metrics(path):
    records = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as e:
                    fail(f"{path}:{lineno}: not valid JSON: {e}")
                if not isinstance(rec, dict) or "kind" not in rec:
                    fail(f"{path}:{lineno}: record without a 'kind' field")
                records.append(rec)
    except OSError as e:
        fail(f"{path}: {e}")
    if not records:
        fail(f"{path}: empty metrics log")

    epochs = 0
    last_ts = {}  # (run, fold, stage) -> last ts_us of its epoch series.
    for rec in records:
        if rec["kind"] != "epoch":
            continue
        epochs += 1
        for field in ("epoch", "loss"):
            if not isinstance(rec.get(field), (int, float)):
                fail(f"{path}: epoch record missing numeric {field!r}: {rec}")
        key = (rec.get("run"), rec.get("fold"), rec.get("stage"))
        ts = rec.get("ts_us")
        if not isinstance(ts, (int, float)):
            fail(f"{path}: epoch record missing ts_us: {rec}")
        if key in last_ts and ts < last_ts[key]:
            fail(f"{path}: ts_us went backwards within series {key}")
        last_ts[key] = ts
    if epochs == 0:
        fail(f"{path}: no per-epoch records")
    if records[-1]["kind"] != "registry":
        fail(f"{path}: last record is {records[-1]['kind']!r}, "
             "expected the closing 'registry' dump")
    reg = records[-1].get("registry")
    if not isinstance(reg, dict) or "counters" not in reg:
        fail(f"{path}: registry dump lacks a 'counters' object")
    print(f"check_trace: {path}: OK ({len(records)} records, "
          f"{epochs} epoch records)")


LEDGER_SCHEMA = "uv-perf-ledger-v1"
LEDGER_ENV_KEYS = (
    "hardware_threads",
    "compiler",
    "build_type",
    "git_sha",
    "uv_threads",
    "uv_pool",
    "simd",
)
LEDGER_DIRECTIONS = ("lower", "higher", "info")


def check_ledger_benchmark(path, name, bench):
    if not isinstance(bench, dict):
        fail(f"{path}: benchmark {name!r} is not an object")
    repeats = bench.get("repeats", [])
    metrics = bench.get("metrics", {})
    if not isinstance(repeats, list) or not isinstance(metrics, dict):
        fail(f"{path}: benchmark {name!r}: bad repeats/metrics types")
    if not repeats and not metrics:
        fail(f"{path}: benchmark {name!r} has neither repeats nor metrics")

    last_ts = None
    for i, rep in enumerate(repeats):
        if not isinstance(rep, dict):
            fail(f"{path}: {name!r} repeat #{i} is not an object")
        ts = rep.get("ts_us")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{path}: {name!r} repeat #{i} has bad ts_us={ts!r}")
        if last_ts is not None and ts < last_ts:
            fail(f"{path}: {name!r} repeat timestamps go backwards "
                 f"(#{i}: {ts} < {last_ts})")
        last_ts = ts
        seconds = rep.get("seconds")
        if not isinstance(seconds, (int, float)) or seconds < 0:
            fail(f"{path}: {name!r} repeat #{i} has bad seconds={seconds!r}")
        for cname, cval in rep.get("counters", {}).items():
            if not isinstance(cval, int) or cval < 0:
                fail(f"{path}: {name!r} repeat #{i} counter {cname!r} "
                     f"is not a non-negative integer: {cval!r}")

    stats = bench.get("stats")
    if repeats:
        if not isinstance(stats, dict):
            fail(f"{path}: benchmark {name!r} has repeats but no stats")
        for key in ("min", "p50", "p95", "max", "mean", "mad"):
            if not isinstance(stats.get(key), (int, float)):
                fail(f"{path}: {name!r} stats missing numeric {key!r}")
        if not (stats["min"] <= stats["p50"] <= stats["p95"] <= stats["max"]):
            fail(f"{path}: {name!r} stats not ordered: "
                 f"min <= p50 <= p95 <= max violated: {stats}")
        if stats["mad"] < 0:
            fail(f"{path}: {name!r} stats has negative mad")
        seconds = [r["seconds"] for r in repeats]
        if not (min(seconds) == stats["min"] and max(seconds) == stats["max"]):
            fail(f"{path}: {name!r} stats min/max disagree with repeats")

    for mname, metric in metrics.items():
        if not isinstance(metric, dict) or not isinstance(
            metric.get("value"), (int, float)
        ):
            fail(f"{path}: {name!r} metric {mname!r} lacks a numeric value")
        if metric.get("direction") not in LEDGER_DIRECTIONS:
            fail(f"{path}: {name!r} metric {mname!r} has bad direction "
                 f"{metric.get('direction')!r}")

    histograms = bench.get("histograms", {})
    if not isinstance(histograms, dict):
        fail(f"{path}: benchmark {name!r}: bad histograms type")
    for hname, hist in histograms.items():
        if not isinstance(hist, dict):
            fail(f"{path}: {name!r} histogram {hname!r} is not an object")
        for key in ("count", "sum", "p50", "p95"):
            val = hist.get(key)
            if not isinstance(val, (int, float)) or val < 0:
                fail(f"{path}: {name!r} histogram {hname!r} has bad "
                     f"{key}={val!r}")
        if hist["p50"] > hist["p95"]:
            fail(f"{path}: {name!r} histogram {hname!r} has p50 > p95")
    return len(repeats), len(metrics)


# Required metrics (name -> direction) per city_scale.* entry kind, matching
# what bench_suite's RunCityScaleSuite records. Entries are named
# city_scale.<kind>_<tag> with tag one of the --city-scale presets.
CITY_SCALE_KINDS = {
    "urg_build": {
        "regions_per_sec": "higher",
        "mem.pool_bytes_peak": "lower",
        "num_regions": "info",
        "num_edges": "info",
    },
    "sampler": {
        "subgraphs_per_sec": "higher",
        "edges_per_subgraph": "info",
    },
    "train_step_cmsf": {
        "train_step_ms": "lower",
        "mem.pool_bytes_peak": "lower",
        "mem.pool_peak_delta": "info",
        "batches_per_epoch": "info",
    },
    "train_step_gcn": {
        "train_step_ms": "lower",
        "mem.pool_bytes_peak": "lower",
        "mem.pool_peak_delta": "info",
        "batches_per_epoch": "info",
    },
}


# Required metrics per serve.* entry kind, matching what bench_suite's
# RunServeSuite records. Entries are named serve.<kind>_<tag>; the engine
# entry must also carry the serving histograms captured from the final
# timed repeat.
SERVE_KINDS = {
    "autograd": {
        "regions_per_sec": "higher",
        "request_size": "info",
        "requests": "info",
    },
    "engine": {
        "regions_per_sec": "higher",
        "speedup_vs_autograd": "higher",
        "num_regions": "info",
        "clients": "info",
        "request_size": "info",
    },
}
SERVE_ENGINE_HISTOGRAMS = (
    "serve.queue_wait_us",
    "serve.batch_size",
    "serve.latency_us",
)


def check_serve_entry(path, name, bench):
    rest = name[len("serve."):]
    kind, _, tag = rest.rpartition("_")
    if kind not in SERVE_KINDS or not tag:
        fail(f"{path}: benchmark {name!r} does not match "
             f"serve.<kind>_<tag> with kind in {sorted(SERVE_KINDS)}")
    if not bench.get("repeats"):
        fail(f"{path}: serve benchmark {name!r} has no timed repeats")
    metrics = bench.get("metrics", {})
    for mname, direction in SERVE_KINDS[kind].items():
        metric = metrics.get(mname)
        if metric is None:
            fail(f"{path}: serve benchmark {name!r} lacks required "
                 f"metric {mname!r}")
        if metric.get("direction") != direction:
            fail(f"{path}: serve benchmark {name!r} metric {mname!r} "
                 f"has direction {metric.get('direction')!r}, "
                 f"expected {direction!r}")
    if kind == "engine":
        histograms = bench.get("histograms", {})
        for hname in SERVE_ENGINE_HISTOGRAMS:
            if hname not in histograms:
                fail(f"{path}: serve benchmark {name!r} lacks required "
                     f"histogram {hname!r}")


def check_city_scale_entry(path, name, bench):
    rest = name[len("city_scale."):]
    kind, _, tag = rest.rpartition("_")
    if kind not in CITY_SCALE_KINDS or not tag:
        fail(f"{path}: benchmark {name!r} does not match "
             f"city_scale.<kind>_<tag> with kind in "
             f"{sorted(CITY_SCALE_KINDS)}")
    if not bench.get("repeats"):
        fail(f"{path}: city-scale benchmark {name!r} has no timed repeats")
    metrics = bench.get("metrics", {})
    for mname, direction in CITY_SCALE_KINDS[kind].items():
        metric = metrics.get(mname)
        if metric is None:
            fail(f"{path}: city-scale benchmark {name!r} lacks required "
                 f"metric {mname!r}")
        if metric.get("direction") != direction:
            fail(f"{path}: city-scale benchmark {name!r} metric {mname!r} "
                 f"has direction {metric.get('direction')!r}, "
                 f"expected {direction!r}")


def check_ledger(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON: {e}")
    if not isinstance(doc, dict) or doc.get("schema") != LEDGER_SCHEMA:
        fail(f"{path}: schema tag is {doc.get('schema')!r}, "
             f"expected {LEDGER_SCHEMA!r}")
    if not isinstance(doc.get("suite"), str) or not doc["suite"]:
        fail(f"{path}: missing 'suite' name")
    env = doc.get("env")
    if not isinstance(env, dict):
        fail(f"{path}: missing 'env' fingerprint")
    for key in LEDGER_ENV_KEYS:
        if key not in env:
            fail(f"{path}: env fingerprint lacks {key!r}")
    if not isinstance(doc.get("config"), dict):
        fail(f"{path}: missing 'config' object")
    benches = doc.get("benchmarks")
    if not isinstance(benches, dict) or not benches:
        fail(f"{path}: missing or empty 'benchmarks' map")
    total_repeats = total_metrics = city_scale = serve = 0
    for name, bench in benches.items():
        nrep, nmet = check_ledger_benchmark(path, name, bench)
        total_repeats += nrep
        total_metrics += nmet
        if name.startswith("city_scale."):
            check_city_scale_entry(path, name, bench)
            city_scale += 1
        elif name.startswith("serve."):
            check_serve_entry(path, name, bench)
            serve += 1
    print(f"check_trace: {path}: OK ({len(benches)} benchmarks, "
          f"{total_repeats} repeats, {total_metrics} metrics, "
          f"{city_scale} city-scale entries, {serve} serve entries)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace-event JSON file")
    parser.add_argument("--metrics", help="JSONL metrics log file")
    parser.add_argument("--ledger", help="perf ledger JSON file (obs::Report)")
    parser.add_argument(
        "--require",
        default="",
        help="comma-separated span names that must appear in the trace",
    )
    args = parser.parse_args()
    if not args.trace and not args.metrics and not args.ledger:
        parser.error("pass --trace, --metrics, and/or --ledger")
    required = [n for n in args.require.split(",") if n]
    if required and not args.trace:
        parser.error("--require needs --trace")
    if args.trace:
        check_trace(args.trace, required)
    if args.metrics:
        check_metrics(args.metrics)
    if args.ledger:
        check_ledger(args.ledger)


if __name__ == "__main__":
    main()
