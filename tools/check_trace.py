#!/usr/bin/env python3
"""Validates the obs output formats: UV_TRACE traces, UV_METRICS logs,
perf ledgers (obs::Report), and the UV_EXPORT live exporter files.

Trace files (Chrome trace-event JSON, as written by src/obs/trace.cc):
  * the file parses as JSON with a "traceEvents" array;
  * every duration-begin event ("ph": "B") has a matching end ("ph": "E")
    on the same (pid, tid), properly nested (LIFO) per thread;
  * timestamps are non-negative and each E is at or after its B;
  * optionally, --require asserts that specific span names are present.

Metrics files (JSONL, as written by src/obs/metrics_log.cc):
  * every line parses as a JSON object with a "kind" field;
  * "epoch" records carry numeric "epoch" and "loss" fields;
  * ts_us is non-decreasing per (run, fold, stage) epoch series;
  * "quality" records (QualityMonitor::Publish) carry the full drift/
    calibration schema: numeric feature_rows/scores/labels counts,
    feature_psi_max/feature_psi_mean/score_psi/score_kl/ece/precision/
    recall all >= 0, and a 0/1 alert flag;
  * the final record is the "registry" dump.

Perf ledgers (uv-perf-ledger-v1 JSON, as written by src/obs/report.cc):
  * schema tag, env fingerprint, config, and a non-empty benchmarks map;
  * per benchmark: repeats with non-negative seconds and monotone ts_us,
    or scalar metrics with a valid direction (or both);
  * stats consistency: min <= p50 <= p95 <= max, mad >= 0, and the
    repeat count matches the serialized repeats array;
  * null where a number is required fails (obs::Report serializes a
    non-finite measurement as null rather than masking it as 0).

Exporter files (src/obs/exporter.cc):
  * --prom: Prometheus text format — every sample belongs to a family
    declared by a preceding # TYPE line, histogram bucket counts are
    cumulative/monotone with le="+Inf" equal to _count, _sum and _count
    are present per histogram, and the file ends with "# EOF" (so a
    torn/partial rewrite is caught);
  * --export-json: the "uv-metrics-export-v1" snapshot — schema tag,
    ts_us, all four sections, p50 <= p95 <= p99 per (windowed) histogram,
    and bucket arrays that sum to their count.

Usage:
  tools/check_trace.py --trace trace.json --require fold,epoch,gemm
  tools/check_trace.py --metrics metrics.jsonl
  tools/check_trace.py --ledger BENCH_core.json
  tools/check_trace.py --prom export.prom --export-json export.prom.json
  tools/check_trace.py --export-json export.prom.json \
      --require-export drift.alert,quality.score_e6

Exits 0 when every check passes, 1 otherwise (so CI can gate on it).
"""

import argparse
import json
import re
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path, required_names):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: missing 'traceEvents' array")

    stacks = {}  # (pid, tid) -> [name, ...] of open B events.
    seen_names = set()
    durations = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"{path}: event #{i} is not an object")
        ph = ev.get("ph")
        if ph == "M":  # Metadata (process/thread names): no pairing rules.
            continue
        if ph not in ("B", "E"):
            fail(f"{path}: event #{i} has unexpected ph={ph!r}")
        key = (ev.get("pid"), ev.get("tid"))
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{path}: event #{i} has bad ts={ts!r}")
        if ph == "B":
            seen_names.add(ev.get("name"))
            stacks.setdefault(key, []).append((ev.get("name"), ts))
        else:
            stack = stacks.get(key)
            if not stack:
                fail(f"{path}: event #{i}: E with no open B on tid {key}")
            name, begin_ts = stack.pop()
            if ev.get("name") not in (None, name):
                fail(
                    f"{path}: event #{i}: E named {ev.get('name')!r} closes "
                    f"B named {name!r} on tid {key} (bad nesting)"
                )
            if ts < begin_ts:
                fail(f"{path}: event #{i}: span {name!r} ends before it begins")
            durations += 1
    for key, stack in stacks.items():
        if stack:
            fail(f"{path}: {len(stack)} unclosed B events on tid {key}: "
                 f"{[name for name, _ in stack]}")
    if durations == 0:
        fail(f"{path}: no duration spans recorded")

    missing = [n for n in required_names if n not in seen_names]
    if missing:
        fail(f"{path}: required span names absent: {missing}; "
             f"present: {sorted(n for n in seen_names if n)}")
    print(f"check_trace: {path}: OK ({durations} spans, "
          f"{len(seen_names)} distinct names)")


# Numeric fields every {"kind": "quality"} record must carry; all are
# non-negative, and "alert" must be exactly 0 or 1. Keep in sync with
# QualityMonitor::Publish in src/obs/quality.cc.
QUALITY_FIELDS = (
    "feature_rows",
    "scores",
    "labels",
    "feature_psi_max",
    "feature_psi_mean",
    "score_psi",
    "score_kl",
    "ece",
    "precision",
    "recall",
)


def check_quality_record(path, rec):
    for field in QUALITY_FIELDS:
        val = rec.get(field)
        if not isinstance(val, (int, float)) or val < 0:
            fail(f"{path}: quality record has bad {field}={val!r}: {rec}")
    if rec.get("alert") not in (0, 1):
        fail(f"{path}: quality record alert is not 0/1: {rec}")
    if rec.get("alert") == 1 and (
        rec["feature_psi_max"] == 0 and rec["score_psi"] == 0
    ):
        fail(f"{path}: quality record alerts with zero PSI: {rec}")


def check_metrics(path):
    records = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as e:
                    fail(f"{path}:{lineno}: not valid JSON: {e}")
                if not isinstance(rec, dict) or "kind" not in rec:
                    fail(f"{path}:{lineno}: record without a 'kind' field")
                records.append(rec)
    except OSError as e:
        fail(f"{path}: {e}")
    if not records:
        fail(f"{path}: empty metrics log")

    epochs = 0
    quality = 0
    last_ts = {}  # (run, fold, stage) -> last ts_us of its epoch series.
    for rec in records:
        if rec["kind"] == "quality":
            check_quality_record(path, rec)
            quality += 1
        if rec["kind"] != "epoch":
            continue
        epochs += 1
        for field in ("epoch", "loss"):
            if not isinstance(rec.get(field), (int, float)):
                fail(f"{path}: epoch record missing numeric {field!r}: {rec}")
        key = (rec.get("run"), rec.get("fold"), rec.get("stage"))
        ts = rec.get("ts_us")
        if not isinstance(ts, (int, float)):
            fail(f"{path}: epoch record missing ts_us: {rec}")
        if key in last_ts and ts < last_ts[key]:
            fail(f"{path}: ts_us went backwards within series {key}")
        last_ts[key] = ts
    if epochs == 0:
        fail(f"{path}: no per-epoch records")
    if records[-1]["kind"] != "registry":
        fail(f"{path}: last record is {records[-1]['kind']!r}, "
             "expected the closing 'registry' dump")
    reg = records[-1].get("registry")
    if not isinstance(reg, dict) or "counters" not in reg:
        fail(f"{path}: registry dump lacks a 'counters' object")
    print(f"check_trace: {path}: OK ({len(records)} records, "
          f"{epochs} epoch records, {quality} quality records)")


LEDGER_SCHEMA = "uv-perf-ledger-v1"
LEDGER_ENV_KEYS = (
    "hardware_threads",
    "compiler",
    "build_type",
    "git_sha",
    "uv_threads",
    "uv_pool",
    "simd",
)
LEDGER_DIRECTIONS = ("lower", "higher", "info")


def check_ledger_benchmark(path, name, bench):
    if not isinstance(bench, dict):
        fail(f"{path}: benchmark {name!r} is not an object")
    repeats = bench.get("repeats", [])
    metrics = bench.get("metrics", {})
    if not isinstance(repeats, list) or not isinstance(metrics, dict):
        fail(f"{path}: benchmark {name!r}: bad repeats/metrics types")
    if not repeats and not metrics:
        fail(f"{path}: benchmark {name!r} has neither repeats nor metrics")

    last_ts = None
    for i, rep in enumerate(repeats):
        if not isinstance(rep, dict):
            fail(f"{path}: {name!r} repeat #{i} is not an object")
        ts = rep.get("ts_us")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{path}: {name!r} repeat #{i} has bad ts_us={ts!r}")
        if last_ts is not None and ts < last_ts:
            fail(f"{path}: {name!r} repeat timestamps go backwards "
                 f"(#{i}: {ts} < {last_ts})")
        last_ts = ts
        seconds = rep.get("seconds")
        if not isinstance(seconds, (int, float)) or seconds < 0:
            fail(f"{path}: {name!r} repeat #{i} has bad seconds={seconds!r}")
        for cname, cval in rep.get("counters", {}).items():
            if not isinstance(cval, int) or cval < 0:
                fail(f"{path}: {name!r} repeat #{i} counter {cname!r} "
                     f"is not a non-negative integer: {cval!r}")

    stats = bench.get("stats")
    if repeats:
        if not isinstance(stats, dict):
            fail(f"{path}: benchmark {name!r} has repeats but no stats")
        for key in ("min", "p50", "p95", "max", "mean", "mad"):
            if not isinstance(stats.get(key), (int, float)):
                fail(f"{path}: {name!r} stats missing numeric {key!r}")
        if not (stats["min"] <= stats["p50"] <= stats["p95"] <= stats["max"]):
            fail(f"{path}: {name!r} stats not ordered: "
                 f"min <= p50 <= p95 <= max violated: {stats}")
        if stats["mad"] < 0:
            fail(f"{path}: {name!r} stats has negative mad")
        seconds = [r["seconds"] for r in repeats]
        if not (min(seconds) == stats["min"] and max(seconds) == stats["max"]):
            fail(f"{path}: {name!r} stats min/max disagree with repeats")

    for mname, metric in metrics.items():
        if not isinstance(metric, dict) or not isinstance(
            metric.get("value"), (int, float)
        ):
            fail(f"{path}: {name!r} metric {mname!r} lacks a numeric value")
        if metric.get("direction") not in LEDGER_DIRECTIONS:
            fail(f"{path}: {name!r} metric {mname!r} has bad direction "
                 f"{metric.get('direction')!r}")

    histograms = bench.get("histograms", {})
    if not isinstance(histograms, dict):
        fail(f"{path}: benchmark {name!r}: bad histograms type")
    for hname, hist in histograms.items():
        if not isinstance(hist, dict):
            fail(f"{path}: {name!r} histogram {hname!r} is not an object")
        for key in ("count", "sum", "p50", "p95"):
            val = hist.get(key)
            if not isinstance(val, (int, float)) or val < 0:
                fail(f"{path}: {name!r} histogram {hname!r} has bad "
                     f"{key}={val!r}")
        if hist["p50"] > hist["p95"]:
            fail(f"{path}: {name!r} histogram {hname!r} has p50 > p95")
    return len(repeats), len(metrics)


# Required metrics (name -> direction) per city_scale.* entry kind, matching
# what bench_suite's RunCityScaleSuite records. Entries are named
# city_scale.<kind>_<tag> with tag one of the --city-scale presets.
CITY_SCALE_KINDS = {
    "urg_build": {
        "regions_per_sec": "higher",
        "mem.pool_bytes_peak": "lower",
        "num_regions": "info",
        "num_edges": "info",
    },
    "sampler": {
        "subgraphs_per_sec": "higher",
        "edges_per_subgraph": "info",
    },
    "train_step_cmsf": {
        "train_step_ms": "lower",
        "mem.pool_bytes_peak": "lower",
        "mem.pool_peak_delta": "info",
        "batches_per_epoch": "info",
    },
    "train_step_gcn": {
        "train_step_ms": "lower",
        "mem.pool_bytes_peak": "lower",
        "mem.pool_peak_delta": "info",
        "batches_per_epoch": "info",
    },
}


# Required metrics per serve.* entry kind, matching what bench_suite's
# RunServeSuite records. Entries are named serve.<kind>_<tag>; the engine
# entry must also carry the serving histograms captured from the final
# timed repeat.
SERVE_KINDS = {
    "autograd": {
        "regions_per_sec": "higher",
        "request_size": "info",
        "requests": "info",
    },
    "engine": {
        "regions_per_sec": "higher",
        "speedup_vs_autograd": "higher",
        "num_regions": "info",
        "clients": "info",
        "request_size": "info",
    },
    # Same load with a QualityMonitor attached to the engine;
    # throughput_vs_plain is the monitored/unmonitored ratio the perf job
    # gates on (the sketches must stay close to free).
    "engine_monitored": {
        "regions_per_sec": "higher",
        "throughput_vs_plain": "higher",
        "num_regions": "info",
        "clients": "info",
        "request_size": "info",
    },
}
SERVE_ENGINE_HISTOGRAMS = (
    "serve.queue_wait_us",
    "serve.batch_size",
    "serve.latency_us",
)
SERVE_MONITORED_HISTOGRAMS = SERVE_ENGINE_HISTOGRAMS + ("quality.score_e6",)


def check_serve_entry(path, name, bench):
    rest = name[len("serve."):]
    kind, _, tag = rest.rpartition("_")
    if kind not in SERVE_KINDS or not tag:
        fail(f"{path}: benchmark {name!r} does not match "
             f"serve.<kind>_<tag> with kind in {sorted(SERVE_KINDS)}")
    if not bench.get("repeats"):
        fail(f"{path}: serve benchmark {name!r} has no timed repeats")
    metrics = bench.get("metrics", {})
    for mname, direction in SERVE_KINDS[kind].items():
        metric = metrics.get(mname)
        if metric is None:
            fail(f"{path}: serve benchmark {name!r} lacks required "
                 f"metric {mname!r}")
        if metric.get("direction") != direction:
            fail(f"{path}: serve benchmark {name!r} metric {mname!r} "
                 f"has direction {metric.get('direction')!r}, "
                 f"expected {direction!r}")
    required_histograms = ()
    if kind == "engine":
        required_histograms = SERVE_ENGINE_HISTOGRAMS
    elif kind == "engine_monitored":
        required_histograms = SERVE_MONITORED_HISTOGRAMS
    histograms = bench.get("histograms", {})
    for hname in required_histograms:
        if hname not in histograms:
            fail(f"{path}: serve benchmark {name!r} lacks required "
                 f"histogram {hname!r}")


def check_city_scale_entry(path, name, bench):
    rest = name[len("city_scale."):]
    kind, _, tag = rest.rpartition("_")
    if kind not in CITY_SCALE_KINDS or not tag:
        fail(f"{path}: benchmark {name!r} does not match "
             f"city_scale.<kind>_<tag> with kind in "
             f"{sorted(CITY_SCALE_KINDS)}")
    if not bench.get("repeats"):
        fail(f"{path}: city-scale benchmark {name!r} has no timed repeats")
    metrics = bench.get("metrics", {})
    for mname, direction in CITY_SCALE_KINDS[kind].items():
        metric = metrics.get(mname)
        if metric is None:
            fail(f"{path}: city-scale benchmark {name!r} lacks required "
                 f"metric {mname!r}")
        if metric.get("direction") != direction:
            fail(f"{path}: city-scale benchmark {name!r} metric {mname!r} "
                 f"has direction {metric.get('direction')!r}, "
                 f"expected {direction!r}")


def check_ledger(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON: {e}")
    if not isinstance(doc, dict) or doc.get("schema") != LEDGER_SCHEMA:
        fail(f"{path}: schema tag is {doc.get('schema')!r}, "
             f"expected {LEDGER_SCHEMA!r}")
    if not isinstance(doc.get("suite"), str) or not doc["suite"]:
        fail(f"{path}: missing 'suite' name")
    env = doc.get("env")
    if not isinstance(env, dict):
        fail(f"{path}: missing 'env' fingerprint")
    for key in LEDGER_ENV_KEYS:
        if key not in env:
            fail(f"{path}: env fingerprint lacks {key!r}")
    if not isinstance(doc.get("config"), dict):
        fail(f"{path}: missing 'config' object")
    benches = doc.get("benchmarks")
    if not isinstance(benches, dict) or not benches:
        fail(f"{path}: missing or empty 'benchmarks' map")
    total_repeats = total_metrics = city_scale = serve = 0
    for name, bench in benches.items():
        nrep, nmet = check_ledger_benchmark(path, name, bench)
        total_repeats += nrep
        total_metrics += nmet
        if name.startswith("city_scale."):
            check_city_scale_entry(path, name, bench)
            city_scale += 1
        elif name.startswith("serve."):
            check_serve_entry(path, name, bench)
            serve += 1
    print(f"check_trace: {path}: OK ({len(benches)} benchmarks, "
          f"{total_repeats} repeats, {total_metrics} metrics, "
          f"{city_scale} city-scale entries, {serve} serve entries)")


PROM_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"      # metric name
    r"(\{[^{}]*\})?"                    # optional {label="value",...}
    r" (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf|NaN)$"
)
PROM_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def prom_family(name, types):
    """Maps a sample name to its declared family, honoring the histogram
    child suffixes (_bucket/_sum/_count)."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def prom_labels(label_blob):
    if not label_blob:
        return {}
    out = {}
    for part in label_blob[1:-1].split(","):
        if not part:
            continue
        key, _, val = part.partition("=")
        out[key] = val.strip('"')
    return out


def check_prom(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"{path}: {e}")
    if not lines or lines[-1] != "# EOF":
        fail(f"{path}: does not end with '# EOF' (torn or partial write?)")

    types = {}  # family -> declared type.
    hists = {}  # family -> {"buckets": [(le, v)], "sum": v, "count": v}.
    samples = 0
    for lineno, line in enumerate(lines[:-1], 1):
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in PROM_TYPES:
                fail(f"{path}:{lineno}: malformed TYPE line: {line!r}")
            if parts[2] in types:
                fail(f"{path}:{lineno}: family {parts[2]!r} declared twice")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # Other comments are legal.
        m = PROM_SAMPLE_RE.match(line)
        if m is None:
            fail(f"{path}:{lineno}: unparseable sample line: {line!r}")
        name, label_blob, value = m.group(1), m.group(2), m.group(3)
        family = prom_family(name, types)
        if family is None:
            fail(f"{path}:{lineno}: sample {name!r} has no preceding "
                 f"# TYPE declaration")
        samples += 1
        if types[family] != "histogram":
            continue
        hist = hists.setdefault(family, {"buckets": [], "sum": None,
                                         "count": None})
        if name.endswith("_bucket"):
            le = prom_labels(label_blob).get("le")
            if le is None:
                fail(f"{path}:{lineno}: histogram bucket without 'le' label")
            hist["buckets"].append((le, float(value)))
        elif name.endswith("_sum"):
            hist["sum"] = float(value)
        elif name.endswith("_count"):
            hist["count"] = float(value)

    if samples == 0:
        fail(f"{path}: no samples")
    for family, hist in hists.items():
        if hist["sum"] is None or hist["count"] is None:
            fail(f"{path}: histogram {family!r} lacks _sum or _count")
        buckets = hist["buckets"]
        if not buckets or buckets[-1][0] != "+Inf":
            fail(f"{path}: histogram {family!r} lacks a trailing "
                 f"le=\"+Inf\" bucket")
        values = [v for _, v in buckets]
        if any(b > a for b, a in zip(values, values[1:])):
            fail(f"{path}: histogram {family!r} bucket counts are not "
                 f"cumulative/monotone: {values}")
        if values[-1] != hist["count"]:
            fail(f"{path}: histogram {family!r}: le=\"+Inf\" bucket "
                 f"({values[-1]}) != _count ({hist['count']})")
    print(f"check_trace: {path}: OK ({len(types)} families, {samples} "
          f"samples, {len(hists)} histograms)")


EXPORT_SCHEMA = "uv-metrics-export-v1"


def check_export_json(path, required_names=()):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON: {e}")
    if not isinstance(doc, dict) or doc.get("schema") != EXPORT_SCHEMA:
        fail(f"{path}: schema tag is {doc.get('schema')!r}, "
             f"expected {EXPORT_SCHEMA!r}")
    ts = doc.get("ts_us")
    if not isinstance(ts, (int, float)) or ts < 0:
        fail(f"{path}: bad ts_us={ts!r}")
    for section in ("counters", "gauges", "histograms", "windowed"):
        if not isinstance(doc.get(section), dict):
            fail(f"{path}: missing {section!r} object")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter {name!r} is not a non-negative "
                 f"integer: {value!r}")
    for name, value in doc["gauges"].items():
        if not isinstance(value, int):
            fail(f"{path}: gauge {name!r} is not an integer: {value!r}")
    for name, hist in doc["histograms"].items():
        for key in ("count", "sum", "p50", "p95", "p99"):
            val = hist.get(key)
            if not isinstance(val, (int, float)) or val < 0:
                fail(f"{path}: histogram {name!r} has bad {key}={val!r}")
        if not hist["p50"] <= hist["p95"] <= hist["p99"]:
            fail(f"{path}: histogram {name!r} percentiles not ordered")
        buckets = hist.get("buckets")
        if not isinstance(buckets, list) or len(buckets) != 28:
            fail(f"{path}: histogram {name!r} bucket array is not "
                 f"28 entries: {buckets!r}")
        if sum(buckets) != hist["count"]:
            fail(f"{path}: histogram {name!r}: buckets sum to "
                 f"{sum(buckets)}, count says {hist['count']}")
    for name, win in doc["windowed"].items():
        for key in ("window_us", "count", "sum", "p50", "p95", "p99"):
            val = win.get(key)
            if not isinstance(val, (int, float)) or val < 0:
                fail(f"{path}: windowed {name!r} has bad {key}={val!r}")
        if win["window_us"] == 0:
            fail(f"{path}: windowed {name!r} has zero window_us")
        if not win["p50"] <= win["p95"] <= win["p99"]:
            fail(f"{path}: windowed {name!r} percentiles not ordered")
    exported = set()
    for section in ("counters", "gauges", "histograms", "windowed"):
        exported.update(doc[section])
    missing = [n for n in required_names if n not in exported]
    if missing:
        fail(f"{path}: required exported metrics absent: {missing}; "
             f"present: {sorted(exported)}")
    print(f"check_trace: {path}: OK ({len(doc['counters'])} counters, "
          f"{len(doc['gauges'])} gauges, {len(doc['histograms'])} "
          f"histograms, {len(doc['windowed'])} windowed)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace-event JSON file")
    parser.add_argument("--metrics", help="JSONL metrics log file")
    parser.add_argument("--ledger", help="perf ledger JSON file (obs::Report)")
    parser.add_argument("--prom",
                        help="Prometheus text file (UV_EXPORT output)")
    parser.add_argument("--export-json",
                        help="JSON export snapshot (UV_EXPORT .json sibling)")
    parser.add_argument(
        "--require",
        default="",
        help="comma-separated span names that must appear in the trace",
    )
    parser.add_argument(
        "--require-export",
        default="",
        help="comma-separated metric names that must appear in any "
             "section of the --export-json snapshot",
    )
    args = parser.parse_args()
    if not (args.trace or args.metrics or args.ledger or args.prom
            or args.export_json):
        parser.error("pass --trace, --metrics, --ledger, --prom, "
                     "and/or --export-json")
    required = [n for n in args.require.split(",") if n]
    if required and not args.trace:
        parser.error("--require needs --trace")
    required_export = [n for n in args.require_export.split(",") if n]
    if required_export and not args.export_json:
        parser.error("--require-export needs --export-json")
    if args.trace:
        check_trace(args.trace, required)
    if args.metrics:
        check_metrics(args.metrics)
    if args.ledger:
        check_ledger(args.ledger)
    if args.prom:
        check_prom(args.prom)
    if args.export_json:
        check_export_json(args.export_json, required_export)


if __name__ == "__main__":
    main()
